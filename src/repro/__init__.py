"""repro — reproduction of "Browser Feature Usage on the Modern Web" (IMC 2016).

The package implements, end to end, the measurement platform the paper
describes:

* ``repro.webidl`` — WebIDL parsing and the browser feature registry
  (1,392 features across 75 standards, mirroring Firefox 46.0.1).
* ``repro.standards`` — standard metadata, historical Firefox builds, and
  the CVE corpus used for the security analysis.
* ``repro.minijs`` — a small JavaScript-subset interpreter with prototype
  chains, closures and ``Object.watch``; the substrate that makes the
  paper's prototype-shimming instrumentation technique literal.
* ``repro.dom`` — the DOM tree and ``window`` singletons exposed to MiniJS.
* ``repro.net`` — URLs, resources, the simulated network and the
  instrumentation-injecting proxy.
* ``repro.blocking`` — an AdBlock Plus filter engine and a Ghostery-style
  tracker blocker.
* ``repro.webgen`` — the deterministic synthetic "Alexa 10k" web the crawl
  measures (the offline stand-in for the live web; see DESIGN.md).
* ``repro.browser`` / ``repro.monkey`` — the instrumented browser, the
  measuring extension, gremlins-style monkey testing and the crawler.
* ``repro.core`` — the survey runner, metrics, per-figure/table analyses,
  validation and reporting: the paper's primary contribution.

Quickstart::

    from repro import api
    result = api.run_small_survey(n_sites=100, seed=7)
    print(api.summarize(result))
"""

__version__ = "1.0.0"

__all__ = [
    "webidl",
    "standards",
    "minijs",
    "dom",
    "net",
    "blocking",
    "webgen",
    "browser",
    "monkey",
    "core",
    "api",
]

"""Hierarchical span tracing with dual clocks.

``repro.obs`` records *where a crawl spends its time* as a tree of
spans (site → attempt → visit → page → phase) decorated with
zero-duration events (network retries, breaker transitions, budget
exhaustions, lease epochs, result-pipe frame corruptions,
memory-pressure degrades).  Every span carries two clocks:

* ``vt`` — the :class:`~repro.core.sandbox.VirtualClock` reading at
  span entry.  The virtual clock advances only on counted work
  (interpreter steps, fetches, deterministic timer jumps), so these
  timestamps are **bit-identical** across serial, fork, spawn and
  kill+resume executions of the same seeded survey.
* ``real_ms`` — wall-clock duration from ``perf_counter``, for
  profiling.  Real durations differ run to run and are therefore
  excluded from the structural digest.

The *structural* projection of a trace — span names, attributes,
nesting, virtual timestamps — is deterministic, which makes
:func:`trace_digest` a regression oracle: the test suite asserts the
digest is identical however the crawl was executed.

Spans whose presence depends on process-local state — the compile
cache's ``phase:parse`` (fires on cache *misses*), ``lease`` epochs
(scheduling, not measurement), ``frame`` corruption records (what the
result pipe suffered), ``memory`` pressure degrades (real RSS) — are
flagged ``stable=False`` and dropped from the projection along with
their subtree.

The tracer is deliberately cheap when off: the module-level
:func:`span` / :func:`event` helpers check one global and return a
shared no-op context manager.
"""

from __future__ import annotations

import hashlib
import json
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "UNSTABLE_PHASES",
    "current_tracer",
    "event",
    "set_tracer",
    "span",
    "span_to_dict",
    "structural_projection",
    "trace_digest",
]

#: phase names whose spans depend on process-local caches rather than
#: on what was measured (``parse`` only runs on a compile-cache miss,
#: and misses differ between warm and cold workers).
UNSTABLE_PHASES = frozenset({"parse"})


class Span:
    """One node in the trace tree."""

    __slots__ = ("name", "attrs", "meta", "vt", "real_ms", "stable",
                 "children")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None,
                 stable: bool = True) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        #: profiling-only annotations, excluded from the digest
        self.meta: Dict[str, Any] = {}
        #: virtual-clock reading at entry (None when no clock is wired)
        self.vt: Optional[float] = None
        #: wall-clock duration in milliseconds (perf_counter)
        self.real_ms: float = 0.0
        self.stable = stable
        self.children: List["Span"] = []


def span_to_dict(node: Span) -> Dict[str, Any]:
    """Full (profiling) serialization of a span tree."""
    out: Dict[str, Any] = {"name": node.name}
    if node.attrs:
        out["attrs"] = dict(node.attrs)
    if node.meta:
        out["meta"] = dict(node.meta)
    if node.vt is not None:
        out["vt"] = node.vt
    out["real_ms"] = node.real_ms
    if not node.stable:
        out["unstable"] = True
    if node.children:
        out["children"] = [span_to_dict(c) for c in node.children]
    return out


class _SpanHandle:
    """Context manager driving one span's lifetime on a tracer."""

    __slots__ = ("_tracer", "_span", "_start", "_root")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._start = 0.0
        self._root = False

    def __enter__(self) -> Span:
        tracer = self._tracer
        node = self._span
        if tracer._stack:
            tracer._stack[-1].children.append(node)
        else:
            self._root = True
        clock = tracer.virtual_clock
        if clock is not None:
            node.vt = clock()
        tracer._stack.append(node)
        self._start = perf_counter()
        return node

    def __exit__(self, *exc_info: Any) -> None:
        node = self._span
        node.real_ms = (perf_counter() - self._start) * 1000.0
        stack = self._tracer._stack
        # Tolerate a mis-nested exit instead of corrupting the tree.
        if node in stack:
            while stack and stack[-1] is not node:
                stack.pop()
            if stack:
                stack.pop()


class Tracer:
    """Builds span trees for the site currently being measured.

    One tracer instance lives per crawling process; the crawl code
    opens a root ``site`` span per site-measurement, and the finished
    tree is detached with :meth:`take_root` and shipped alongside the
    measurement.
    """

    def __init__(self) -> None:
        self._stack: List[Span] = []
        self._roots: List[Span] = []
        #: zero-arg callable returning the current virtual time, or
        #: None when the active budget has no virtual clock.
        self.virtual_clock: Optional[Callable[[], float]] = None

    # -- recording -----------------------------------------------------

    def span(self, name: str, stable: bool = True,
             **attrs: Any) -> _SpanHandle:
        node = Span(name, attrs, stable=stable)
        handle = _SpanHandle(self, node)
        if not self._stack:
            self._roots.append(node)
        return handle

    def event(self, name: str, stable: bool = True, **attrs: Any) -> None:
        """A zero-duration child of the current span.

        Dropped silently outside any span (e.g. cache prewarming at
        worker start happens before the first site span opens).
        """
        if not self._stack:
            return
        node = Span(name, attrs, stable=stable)
        clock = self.virtual_clock
        if clock is not None:
            node.vt = clock()
        self._stack[-1].children.append(node)

    def set_attrs(self, **attrs: Any) -> None:
        """Attach digest-visible attributes to the current span."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def annotate(self, **meta: Any) -> None:
        """Attach profiling-only metadata (excluded from the digest)."""
        if self._stack:
            self._stack[-1].meta.update(meta)

    # -- harvesting ----------------------------------------------------

    def take_root(self) -> Optional[Span]:
        """Detach and return the most recent finished root span."""
        self._stack.clear()
        if not self._roots:
            return None
        root = self._roots.pop()
        self._roots.clear()
        return root

    def reset(self) -> None:
        self._stack.clear()
        self._roots.clear()
        self.virtual_clock = None


# -- module-level tracer plumbing --------------------------------------

_TRACER: Optional[Tracer] = None


class _NullSpan:
    """Shared no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as the process tracer; returns the old one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def current_tracer() -> Optional[Tracer]:
    return _TRACER


def span(name: str, stable: bool = True, **attrs: Any):
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, stable=stable, **attrs)


def event(name: str, stable: bool = True, **attrs: Any) -> None:
    tracer = _TRACER
    if tracer is not None:
        tracer.event(name, stable=stable, **attrs)


# -- structural digest -------------------------------------------------

def structural_projection(
    node: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    """The digest-visible shape of a serialized span tree.

    Keeps name, attributes, virtual timestamps and stable children;
    drops real durations, profiling metadata and unstable subtrees.
    Returns None for an unstable node.
    """
    if node.get("unstable"):
        return None
    out: Dict[str, Any] = {"name": node["name"]}
    if node.get("attrs"):
        out["attrs"] = node["attrs"]
    if "vt" in node:
        out["vt"] = node["vt"]
    children = []
    for child in node.get("children", ()):
        projected = structural_projection(child)
        if projected is not None:
            children.append(projected)
    if children:
        out["children"] = children
    return out


def trace_digest(records: Iterable[Dict[str, Any]]) -> str:
    """Canonical content hash of a trace's deterministic structure.

    ``records`` are trace-shard records (dicts with ``condition``,
    ``domain`` and a ``trace`` span tree).  Records are de-duplicated
    last-wins per (condition, domain) — a crash between the trace
    append and the measurement append leaves an orphan trace that a
    resumed run re-records — then sorted, so the digest is independent
    of write order, worker count and resume boundaries.
    """
    merged: Dict[Any, Dict[str, Any]] = {}
    for record in records:
        merged[(record["condition"], record["domain"])] = record
    canonical = []
    for key in sorted(merged):
        record = merged[key]
        projected = structural_projection(record["trace"])
        canonical.append({
            "condition": record["condition"],
            "domain": record["domain"],
            "trace": projected,
        })
    payload = json.dumps(canonical, sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()

"""Runtime crawl metrics: labeled counter/gauge/histogram series.

``repro.core.runmetrics`` is the live-telemetry counterpart to the
post-hoc tracer (:mod:`repro.obs`).  A process-wide
:class:`MetricsRegistry` holds labeled series declared up front in
:data:`METRIC_SPECS` — unknown names or label sets are a programming
error, and histogram bucket boundaries are fixed in the spec so every
snapshot of the same build has the same schema.

Series split into two stability classes, mirroring the trace-digest
split:

* **stable** series are pure functions of *what was measured*: sites
  started/measured/degraded/failed by cause, pages, feature
  invocations, the canonical ``TELEMETRY_COUNTERS``, per-site fetch
  and interpreter work harvested from deterministic counters.  They
  are bit-identical across serial, fork, spawn and kill+resume
  executions of the same seeded survey, and :func:`metrics_digest`
  hashes exactly this projection.
* **unstable** series describe *how this particular execution went*:
  wall-clock RSS gauges, worker heartbeat ages, supervisor fault
  counters (watchdog kills, lease revocations, frame corruptions),
  compile-cache hit mirrors and IPC frame sizes.  They are flagged
  ``stable: false`` in snapshots and excluded from the digest.

Stable totals are *harvested at site boundaries* rather than counted
per event: the crawl computes one small delta dict per finished site
(:func:`wire_delta` + the measurement itself) and feeds it through
:meth:`MetricsRegistry.ingest_site`.  The delta also rides the
measurement shard record as a sibling field, which is what makes
kill+resume bit-identical — a resumed run rebuilds its stable totals
by re-ingesting the recovered records, so totals are a function of
the recorded site set, not of which process counted them.

Merging is data-driven from the snapshot itself: counters and
histograms add, gauges and mirror counters take the max (``agg``
field), which makes :func:`merge_snapshots` associative and
commutative — the supervisor can fold per-worker snapshots in any
order.

Like the tracer, the module-level helpers (:func:`inc`,
:func:`set_gauge`, :func:`observe`) check one global and return
immediately when no registry is installed, so the instrumentation is
near-free when metrics are off.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Tuple

__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "METRICS_SCHEMA_VERSION",
    "METRIC_SPECS",
    "MetricSpec",
    "MetricsRegistry",
    "TELEMETRY_SERIES",
    "counter_floor",
    "current_registry",
    "failure_cause",
    "inc",
    "merge_snapshots",
    "metrics_digest",
    "observe",
    "render_openmetrics",
    "series_value",
    "set_gauge",
    "set_registry",
    "stable_projection",
    "wire_delta",
]

#: bump on any incompatible snapshot-layout change
METRICS_SCHEMA_VERSION = 1

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: merge modes: "sum" adds matching series, "max" keeps the larger
#: value (gauges, and counters mirroring an external cumulative total)
AGG_SUM = "sum"
AGG_MAX = "max"


class MetricSpec(NamedTuple):
    name: str
    kind: str
    help: str
    stable: bool
    labels: Tuple[str, ...]
    agg: str
    buckets: Optional[Tuple[float, ...]]


def _spec(name, kind, help_text, stable=True, labels=(),
          agg=AGG_SUM, buckets=None):
    if kind == GAUGE:
        agg = AGG_MAX
    return MetricSpec(name, kind, help_text, stable, tuple(labels),
                      agg, tuple(buckets) if buckets else None)


#: per-site page counts: a site is visits_per_site rounds of a handful
#: of pages, so the mass sits low with a long configurable tail.
SITE_PAGES_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0)

#: per-site request counts (pages + subresources + retries).
SITE_REQUESTS_BUCKETS = (5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0)

#: result-pipe frame sizes (measurement + trace payloads).
FRAME_BYTES_BUCKETS = (
    256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0,
)

_SPECS = (
    # -- stable: the crawl's deterministic progress ---------------------
    _spec("crawl_sites_started_total", COUNTER,
          "Site measurements recorded (any outcome).",
          labels=("condition",)),
    _spec("crawl_sites_measured_total", COUNTER,
          "Sites with at least one successful visit round.",
          labels=("condition",)),
    _spec("crawl_sites_degraded_total", COUNTER,
          "Measured sites that lost subresources or budget.",
          labels=("condition",)),
    _spec("crawl_sites_failed_total", COUNTER,
          "Unmeasured sites by structured failure cause.",
          labels=("condition", "cause")),
    _spec("crawl_rounds_partial_total", COUNTER,
          "Visit rounds cut short by a resource budget, by cause.",
          labels=("condition", "cause")),
    _spec("crawl_pages_visited_total", COUNTER,
          "Pages visited across all rounds.",
          labels=("condition",)),
    _spec("crawl_feature_invocations_total", COUNTER,
          "Web-API feature invocations observed.",
          labels=("condition",)),
    _spec("browser_scripts_blocked_total", COUNTER,
          "Scripts blocked by the active condition.",
          labels=("condition",)),
    _spec("browser_interaction_events_total", COUNTER,
          "Synthetic interaction events dispatched.",
          labels=("condition",)),
    _spec("browser_degraded_resources_total", COUNTER,
          "Subresources lost to exhausted retries.",
          labels=("condition",)),
    _spec("fetch_requests_total", COUNTER,
          "HTTP requests issued by the fetcher.",
          labels=("condition",)),
    _spec("fetch_requests_failed_total", COUNTER,
          "Requests that failed after retries.",
          labels=("condition",)),
    _spec("fetch_requests_blocked_total", COUNTER,
          "Requests blocked by the active condition.",
          labels=("condition",)),
    _spec("fetch_requests_retried_total", COUNTER,
          "Per-request retry attempts.",
          labels=("condition",)),
    _spec("fetch_requests_short_circuited_total", COUNTER,
          "Requests rejected by an open circuit breaker.",
          labels=("condition",)),
    _spec("fetch_breaker_opens_total", COUNTER,
          "Circuit breaker open transitions.",
          labels=("condition",)),
    _spec("fetch_bytes_total", COUNTER,
          "Response body bytes fetched.",
          labels=("condition",)),
    _spec("interp_steps_total", COUNTER,
          "Budget-metered interpreter steps executed.",
          labels=("condition",)),
    _spec("interp_allocations_total", COUNTER,
          "Budget-metered allocations counted.",
          labels=("condition",)),
    _spec("crawl_site_pages", HISTOGRAM,
          "Pages visited per site.",
          labels=("condition",), buckets=SITE_PAGES_BUCKETS),
    _spec("crawl_site_requests", HISTOGRAM,
          "Requests issued per site.",
          labels=("condition",), buckets=SITE_REQUESTS_BUCKETS),
    # -- unstable: how this particular execution went -------------------
    _spec("supervisor_watchdog_kills_total", COUNTER,
          "Workers killed by the heartbeat watchdog.",
          stable=False),
    _spec("supervisor_lease_revocations_total", COUNTER,
          "Site leases revoked past the lease deadline.",
          stable=False),
    _spec("supervisor_frame_corruptions_total", COUNTER,
          "Result-pipe frame defects by decoder reason.",
          stable=False, labels=("reason",)),
    _spec("supervisor_stale_results_total", COUNTER,
          "Results fenced for carrying a stale lease epoch.",
          stable=False),
    _spec("supervisor_worker_faults_total", COUNTER,
          "Typed fault reports received from workers.",
          stable=False),
    _spec("supervisor_spawn_retries_total", COUNTER,
          "Worker spawn attempts that had to be retried.",
          stable=False),
    _spec("supervisor_memory_recycles_total", COUNTER,
          "Workers recycled for memory pressure.",
          stable=False),
    _spec("compile_cache_hits_total", COUNTER,
          "Compile-cache hits (cumulative mirror per process).",
          stable=False, labels=("proc",), agg=AGG_MAX),
    _spec("compile_cache_misses_total", COUNTER,
          "Compile-cache misses (cumulative mirror per process).",
          stable=False, labels=("proc",), agg=AGG_MAX),
    _spec("worker_rss_mb", GAUGE,
          "Resident-set high water per process, in MiB.",
          stable=False, labels=("proc",)),
    _spec("worker_heartbeat_age_seconds", GAUGE,
          "Seconds since each worker slot's last heartbeat.",
          stable=False, labels=("slot",)),
    _spec("crawl_inflight_sites", GAUGE,
          "Sites currently leased to workers.",
          stable=False),
    _spec("ipc_frame_bytes", HISTOGRAM,
          "Result-pipe message sizes seen by the supervisor.",
          stable=False, buckets=FRAME_BYTES_BUCKETS),
)

METRIC_SPECS: Dict[str, MetricSpec] = {spec.name: spec for spec in _SPECS}

#: canonical telemetry counter -> the stable series mirroring it; the
#: fsck cross-check sums shard measurements through this mapping.
TELEMETRY_SERIES = {
    "scripts_blocked": "browser_scripts_blocked_total",
    "requests_blocked": "fetch_requests_blocked_total",
    "interaction_events": "browser_interaction_events_total",
    "degraded_resources": "browser_degraded_resources_total",
    "requests_retried": "fetch_requests_retried_total",
    "breaker_opens": "fetch_breaker_opens_total",
}

#: wire-delta key -> stable series for the extras a measurement does
#: not itself record (cumulative fetcher/interpreter counters deltaed
#: around the site by the measuring process).
_WIRE_SERIES = {
    "requests": "fetch_requests_total",
    "requests_failed": "fetch_requests_failed_total",
    "short_circuited": "fetch_requests_short_circuited_total",
    "bytes": "fetch_bytes_total",
    "steps": "interp_steps_total",
    "allocations": "interp_allocations_total",
}


def wire_delta(requests=0, requests_failed=0, short_circuited=0,
               bytes_fetched=0, steps=0, allocations=0):
    """The per-site sibling payload: zero entries dropped.

    Only carries what the measurement record cannot reproduce; the
    rest of a site's stable delta is derived from the measurement
    itself at ingest time (and again at resume-rehydration time).
    """
    delta = {
        "requests": requests,
        "requests_failed": requests_failed,
        "short_circuited": short_circuited,
        "bytes": bytes_fetched,
        "steps": steps,
        "allocations": allocations,
    }
    return {key: value for key, value in delta.items() if value}


def failure_cause(measurement) -> str:
    """Stable slug for an unmeasured site's failure cause."""
    cause = getattr(measurement, "budget_cause", None)
    if cause:
        return str(cause)
    reason = (getattr(measurement, "failure_reason", None) or "").strip()
    if not reason:
        return "unknown"
    return reason.split(":", 1)[0].strip()[:48] or "unknown"


def _as_count(value) -> int:
    """Coerce a (possibly disk-loaded) delta value to a safe count."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return 0
    return int(value) if value > 0 else 0


class _Histogram:
    """Fixed-bucket histogram cell: per-bucket counts plus sum/count."""

    __slots__ = ("counts", "total", "count")

    def __init__(self, n_bounds: int) -> None:
        self.counts = [0] * (n_bounds + 1)  # +1 for the +Inf bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value: float, bounds: Tuple[float, ...]) -> None:
        self.counts[bisect_left(bounds, value)] += 1
        self.total += value
        self.count += 1


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Process-wide labeled metric series, declared in METRIC_SPECS."""

    __slots__ = ("_series",)

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                           Any] = {}

    # -- recording -----------------------------------------------------

    def _check(self, name: str, kind: str,
               labels: Dict[str, Any]) -> MetricSpec:
        spec = METRIC_SPECS.get(name)
        if spec is None:
            raise KeyError("undeclared metric %r" % name)
        if spec.kind != kind:
            raise TypeError(
                "metric %r is a %s, not a %s" % (name, spec.kind, kind)
            )
        if tuple(sorted(labels)) != tuple(sorted(spec.labels)):
            raise ValueError(
                "metric %r takes labels %r, got %r"
                % (name, spec.labels, tuple(sorted(labels)))
            )
        return spec

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        self._check(name, COUNTER, labels)
        if value < 0:
            raise ValueError(
                "counter %r cannot decrease (inc by %r)" % (name, value)
            )
        key = (name, _label_key(labels))
        self._series[key] = self._series.get(key, 0) + value

    def counter_floor(self, name: str, value: float,
                      **labels: Any) -> None:
        """Mirror an external cumulative counter: keep the max seen."""
        self._check(name, COUNTER, labels)
        key = (name, _label_key(labels))
        current = self._series.get(key, 0)
        if value > current:
            self._series[key] = value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self._check(name, GAUGE, labels)
        self._series[(name, _label_key(labels))] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        spec = self._check(name, HISTOGRAM, labels)
        key = (name, _label_key(labels))
        cell = self._series.get(key)
        if cell is None:
            cell = self._series[key] = _Histogram(len(spec.buckets))
        cell.observe(value, spec.buckets)

    # -- site-boundary harvest -----------------------------------------

    def ingest_site(self, condition: str, measurement,
                    wire: Optional[Dict[str, Any]] = None) -> None:
        """Fold one recorded site into the stable series.

        ``measurement`` is the site's :class:`SiteMeasurement` (fresh
        or recovered from a shard record); ``wire`` is the sibling
        delta built by :func:`wire_delta` in the measuring process, or
        None when the site never ran (quarantine synthesis, old runs).
        Ingest is per recorded site, so totals are a pure function of
        the recorded set — the kill+resume determinism hinge.
        """
        self.inc("crawl_sites_started_total", condition=condition)
        if getattr(measurement, "measured", False):
            self.inc("crawl_sites_measured_total", condition=condition)
        else:
            self.inc("crawl_sites_failed_total", condition=condition,
                     cause=failure_cause(measurement))
        if getattr(measurement, "degraded", False):
            self.inc("crawl_sites_degraded_total", condition=condition)
        partial = _as_count(getattr(measurement, "rounds_partial", 0))
        if partial:
            cause = getattr(measurement, "budget_cause", None) or "unknown"
            self.inc("crawl_rounds_partial_total", partial,
                     condition=condition, cause=str(cause))
        pages = _as_count(getattr(measurement, "pages", 0))
        if pages:
            self.inc("crawl_pages_visited_total", pages,
                     condition=condition)
        invocations = _as_count(getattr(measurement, "invocations", 0))
        if invocations:
            self.inc("crawl_feature_invocations_total", invocations,
                     condition=condition)
        for counter, series in TELEMETRY_SERIES.items():
            value = _as_count(getattr(measurement, counter, 0))
            if value:
                self.inc(series, value, condition=condition)
        requests = 0
        if wire:
            for key, series in _WIRE_SERIES.items():
                value = _as_count(wire.get(key, 0))
                if value:
                    self.inc(series, value, condition=condition)
            requests = _as_count(wire.get("requests", 0))
        self.observe("crawl_site_pages", float(pages),
                     condition=condition)
        self.observe("crawl_site_requests", float(requests),
                     condition=condition)

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Schema-stable serialization of every live series."""
        series: List[Dict[str, Any]] = []
        for (name, labels), cell in self._series.items():
            spec = METRIC_SPECS[name]
            entry: Dict[str, Any] = {
                "name": name,
                "kind": spec.kind,
                "stable": spec.stable,
                "agg": spec.agg,
                "labels": dict(labels),
            }
            if spec.kind == HISTOGRAM:
                entry["bounds"] = list(spec.buckets)
                entry["buckets"] = list(cell.counts)
                entry["sum"] = cell.total
                entry["count"] = cell.count
            else:
                entry["value"] = cell
            series.append(entry)
        series.sort(key=_entry_key)
        return {"schema": METRICS_SCHEMA_VERSION, "series": series}


def _entry_key(entry: Dict[str, Any]):
    return (entry.get("name", ""),
            tuple(sorted(entry.get("labels", {}).items())))


def merge_snapshots(base: Dict[str, Any],
                    other: Dict[str, Any]) -> Dict[str, Any]:
    """Fold two snapshots; associative and commutative.

    Merge semantics ride in the snapshots themselves (``agg`` / kind),
    so snapshots from other processes — even slightly newer builds —
    merge without consulting local specs.  Histograms with mismatched
    bounds raise: that is a schema break, not mergeable data.
    """
    merged: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                 Dict[str, Any]] = {}
    for snapshot in (base, other):
        for entry in snapshot.get("series", ()):
            key = _entry_key(entry)
            current = merged.get(key)
            if current is None:
                merged[key] = _copy_entry(entry)
                continue
            if entry.get("kind") == HISTOGRAM:
                if current.get("bounds") != entry.get("bounds"):
                    raise ValueError(
                        "histogram %r bucket bounds differ between "
                        "snapshots" % (entry.get("name"),)
                    )
                current["buckets"] = [
                    a + b for a, b in zip(current["buckets"],
                                          entry["buckets"])
                ]
                current["sum"] = current.get("sum", 0) + entry.get("sum", 0)
                current["count"] = (current.get("count", 0)
                                    + entry.get("count", 0))
            elif entry.get("agg") == AGG_MAX or entry.get("kind") == GAUGE:
                current["value"] = max(current.get("value", 0),
                                       entry.get("value", 0))
            else:
                current["value"] = (current.get("value", 0)
                                    + entry.get("value", 0))
    series = [merged[key] for key in sorted(merged)]
    return {
        "schema": max(base.get("schema", METRICS_SCHEMA_VERSION),
                      other.get("schema", METRICS_SCHEMA_VERSION)),
        "series": series,
    }


def _copy_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
    copy = dict(entry)
    copy["labels"] = dict(entry.get("labels", {}))
    if entry.get("kind") == HISTOGRAM:
        copy["bounds"] = list(entry.get("bounds", ()))
        copy["buckets"] = list(entry.get("buckets", ()))
    return copy


# -- digest ------------------------------------------------------------

def stable_projection(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The digest-visible subset: stable series only."""
    return {
        "schema": snapshot.get("schema", METRICS_SCHEMA_VERSION),
        "series": [entry for entry in snapshot.get("series", ())
                   if entry.get("stable")],
    }


def metrics_digest(snapshot: Dict[str, Any]) -> str:
    """Canonical content hash of a snapshot's deterministic series."""
    payload = json.dumps(stable_projection(snapshot), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def series_value(snapshot: Dict[str, Any], name: str,
                 **labels: Any) -> Optional[float]:
    """Value of one counter/gauge series in a snapshot, or None."""
    want = _label_key(labels)
    for entry in snapshot.get("series", ()):
        if entry.get("name") == name and _entry_key(entry)[1] == want:
            return entry.get("value")
    return None


# -- OpenMetrics exposition --------------------------------------------

def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels_text(labels: Dict[str, Any],
                 extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = sorted((k, str(v)) for k, v in labels.items())
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join('%s="%s"' % (k, _escape_label(v)) for k, v in pairs)
    return "{%s}" % body


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def render_openmetrics(snapshot: Dict[str, Any]) -> str:
    """OpenMetrics text exposition of one snapshot.

    Counter families drop their ``_total`` suffix in TYPE/HELP lines
    (samples keep it), histograms emit cumulative ``_bucket`` samples
    plus ``_count``/``_sum``, and the exposition ends with ``# EOF``.
    """
    by_name: Dict[str, List[Dict[str, Any]]] = {}
    for entry in snapshot.get("series", ()):
        by_name.setdefault(entry.get("name", ""), []).append(entry)
    lines: List[str] = []
    for name in sorted(by_name):
        entries = sorted(by_name[name], key=_entry_key)
        kind = entries[0].get("kind", GAUGE)
        family = name
        if kind == COUNTER and family.endswith("_total"):
            family = family[:-len("_total")]
        lines.append("# TYPE %s %s" % (family, kind))
        spec = METRIC_SPECS.get(name)
        if spec is not None:
            lines.append("# HELP %s %s" % (family, spec.help))
        for entry in entries:
            labels = entry.get("labels", {})
            if kind == HISTOGRAM:
                bounds = entry.get("bounds", ())
                buckets = entry.get("buckets", ())
                running = 0
                for bound, count in zip(bounds, buckets):
                    running += count
                    lines.append("%s_bucket%s %s" % (
                        family,
                        _labels_text(labels, ("le", _fmt(float(bound)))),
                        _fmt(running),
                    ))
                running += buckets[len(bounds)] if len(buckets) > len(bounds) else 0
                lines.append("%s_bucket%s %s" % (
                    family, _labels_text(labels, ("le", "+Inf")),
                    _fmt(running),
                ))
                lines.append("%s_count%s %s" % (
                    family, _labels_text(labels),
                    _fmt(entry.get("count", 0)),
                ))
                lines.append("%s_sum%s %s" % (
                    family, _labels_text(labels),
                    _fmt(entry.get("sum", 0)),
                ))
            else:
                lines.append("%s%s %s" % (
                    entry.get("name", family), _labels_text(labels),
                    _fmt(entry.get("value", 0)),
                ))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- module-level registry plumbing ------------------------------------

_REGISTRY: Optional[MetricsRegistry] = None


def set_registry(
    registry: Optional[MetricsRegistry],
) -> Optional[MetricsRegistry]:
    """Install the process registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def current_registry() -> Optional[MetricsRegistry]:
    return _REGISTRY


def inc(name: str, value: float = 1, **labels: Any) -> None:
    registry = _REGISTRY
    if registry is not None:
        registry.inc(name, value, **labels)


def counter_floor(name: str, value: float, **labels: Any) -> None:
    registry = _REGISTRY
    if registry is not None:
        registry.counter_floor(name, value, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    registry = _REGISTRY
    if registry is not None:
        registry.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    registry = _REGISTRY
    if registry is not None:
        registry.observe(name, value, **labels)

"""Survey orchestration: the full automated crawl (section 4.3.3).

``run_survey`` visits every ranked site under every requested browsing
condition, five rounds each, through the instrumented browser, and
returns a :class:`SurveyResult` the analysis layer consumes.

The crawl is *streaming and fault-tolerant*: given a run directory it
checkpoints every finished site-measurement to durable storage as it
lands (see :mod:`repro.core.checkpoint`), so a crash — OOM, SIGKILL,
power loss — costs at most the site in flight.  ``resume_survey``
picks such a run back up, skipping already-measured (condition,
domain) pairs; because per-site randomness derives only from (seed,
domain, round, condition), a resumed run is bit-identical to an
uninterrupted one.  A per-site :class:`RetryPolicy` re-attempts
transient fetch failures with exponential backoff and records
exhausted or deterministic failures with their cause instead of
aborting the run.
"""

from __future__ import annotations

import os
import pickle
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.blocking.extension import BrowsingCondition
from repro.blocking.lists import builtin_filter_list, builtin_tracker_database
from repro.browser.browser import Browser, BrowserConfig
from repro.browser.session import TELEMETRY_COUNTERS, SiteMeasurement
from repro.core import ipc, runmetrics
from repro.core.sandbox import (
    MEMORY_PRESSURE_CAUSE,
    QUARANTINE_CAUSE,
    BudgetExceeded,
    MemoryGovernor,
    ResourceBudget,
    _default_rss_probe,
    set_alloc_hook,
    set_heartbeat,
    set_memory_governor,
)
from repro.core.storage import RunLock, Storage, StorageError
from repro.minijs.compile import CompileCache, shared_cache
from repro.monkey.crawler import CrawlConfig, SiteCrawler
from repro.net.fetcher import Fetcher
from repro.net.resilience import ResilienceConfig
from repro.timing import merge_phases, phase_delta, phase_snapshot
from repro.webgen.sitegen import SyntheticWeb
from repro.webidl.registry import FeatureRegistry

ProgressCallback = Callable[[str, int, int], None]


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try a site before recording it as failed.

    Only *transient* failures (see ``NetworkError.transient``) are
    retried by default: re-running a deterministic failure — NXDOMAIN,
    a site whose only script has a fatal syntax error — reproduces it
    exactly, so retrying wastes crawl time without changing validity.
    ``retry_deterministic`` flips that for debugging.
    """

    #: total attempts per (condition, domain), including the first
    attempts: int = 3
    #: seconds before the first retry (0 disables sleeping; tests)
    backoff_base: float = 0.5
    #: exponential growth factor between retries
    backoff_factor: float = 2.0
    #: ceiling on any single backoff sleep
    backoff_max: float = 60.0
    #: also retry failures classified as deterministic
    retry_deterministic: bool = False

    def delay(self, failures_so_far: int) -> float:
        """Backoff before the next attempt, after N failed ones."""
        delay = self.backoff_base * (
            self.backoff_factor ** max(0, failures_so_far - 1)
        )
        return min(delay, self.backoff_max)


class DomainFailure(str):
    """A failed domain, str-compatible, carrying its failure record.

    Instances compare/hash as the bare domain (existing set-algebra
    over ``failed_domains`` keeps working) while ``cause`` holds the
    failure reason or raising exception class and ``attempts`` how many
    tries the retry policy spent.
    """

    cause: Optional[str]
    attempts: int
    transient: bool
    budget_cause: Optional[str]
    overshoot: float

    def __new__(
        cls,
        domain: str,
        cause: Optional[str] = None,
        attempts: int = 1,
        transient: bool = False,
        budget_cause: Optional[str] = None,
        overshoot: float = 0.0,
    ) -> "DomainFailure":
        self = super().__new__(cls, domain)
        self.cause = cause
        self.attempts = attempts
        self.transient = transient
        #: structured budget cause ("deadline", "steps", "quarantined",
        #: ...) when a resource budget or the watchdog failed the site
        self.budget_cause = budget_cause
        #: worst used/limit ratio the site reached against that budget
        self.overshoot = overshoot
        return self


@dataclass
class SurveyConfig:
    """What to crawl and how."""

    #: browsing conditions to run (paper: default + blocking; add the
    #: single-extension conditions for the Figure 7 analysis)
    conditions: Tuple[str, ...] = (
        BrowsingCondition.DEFAULT,
        BrowsingCondition.BLOCKING,
    )
    #: visit rounds per site per condition (the paper uses five)
    visits_per_site: int = 5
    #: master seed for the crawl's randomness
    seed: int = 606
    crawl: CrawlConfig = field(default_factory=CrawlConfig)
    browser: BrowserConfig = field(default_factory=BrowserConfig)
    #: crawl only the first N ranked sites (None = all)
    max_sites: Optional[int] = None
    #: parallel crawl workers (1 = in-process).  Per-site randomness is
    #: derived from (seed, domain, round), so worker count and schedule
    #: cannot change the measurements — parallel and serial runs are
    #: bit-identical.
    workers: int = 1
    #: multiprocessing start method for parallel crawls: "fork",
    #: "spawn", "forkserver", or None to auto-detect (fork where the
    #: platform offers it — workers inherit the pre-warmed compile
    #: cache for free — falling back to spawn elsewhere, e.g. Windows,
    #: macOS defaults, or Python >= 3.14's new default).  Worker state
    #: is rebuilt from explicitly passed initializer args either way,
    #: so every start method measures bit-identically.
    start_method: Optional[str] = None
    #: per-site retry behavior for transient failures
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: per-*request* resilience (retries with VirtualClock-charged
    #: seeded backoff, per-origin circuit breakers).  The default is
    #: inert — request-level retries change how many wire attempts a
    #: source sees, so they are opt-in; the CLI arms them
    #: (``--request-retries`` / ``--breaker-threshold``)
    resilience: ResilienceConfig = field(
        default_factory=ResilienceConfig
    )
    #: site-isolation resource budgets (the default enforces nothing);
    #: a blown budget degrades that round into a partial measurement
    budget: ResourceBudget = field(default_factory=ResourceBudget)
    #: strikes (worker kills/hangs) before a site is quarantined and
    #: never dispatched again
    quarantine_threshold: int = 3
    #: seconds a parallel worker may go without a heartbeat while
    #: holding a site before the supervisor kills and respawns it.
    #: None disables the watchdog (a hung site then hangs its worker
    #: forever, as with the plain pool).  Only parallel crawls
    #: (``workers > 1``) have a supervisor to enforce this.
    hang_timeout: Optional[float] = 300.0
    #: seconds a dispatched site may hold its lease before the
    #: supervisor revokes it: the straggling worker is killed, the
    #: site struck and re-leased under a fresh epoch (the old epoch's
    #: late result, should the corpse have piped one, is fenced off as
    #: stale).  Unlike ``hang_timeout`` this bounds *total* time on a
    #: site — a worker can beat forever while grinding one page.
    #: None (the default) disables the deadline.
    lease_deadline: Optional[float] = None
    #: RSS ceiling per worker process, in MB (``ru_maxrss`` high-water
    #: polled on the heartbeat).  A worker crossing it finishes the
    #: in-flight page, records a structured ``memory-pressure`` cause
    #: on the site's measurement, ships it, and exits so the
    #: supervisor respawns a fresh process; sites that repeatedly
    #: pressure workers accumulate quarantine strikes.  Serial crawls
    #: degrade the same way but cannot recycle the process — the
    #: high-water mark never comes back down — so a pressured serial
    #: run marks every remaining site.  None (the default) disables
    #: governance.
    max_worker_rss_mb: Optional[float] = None
    #: record a span trace of the crawl (see :mod:`repro.obs`).  With a
    #: run directory, each site's trace is appended to a per-condition
    #: ``trace-<condition>.jsonl`` shard right before its measurement;
    #: without one the spans are built and discarded.
    trace: bool = False
    #: MiniJS execution tier: "compiled" (closure-compiled, the crawl
    #: default) or "tree" (the reference tree-walking oracle).  Both
    #: engines are observationally identical — same measurements, step
    #: counts and trace digests (tests/test_engine_differential.py) —
    #: so this only selects how fast scripts run.
    engine: str = "compiled"
    #: record runtime metrics (see :mod:`repro.core.runmetrics`).  On
    #: by default: the stable series are harvested once per finished
    #: site from counters the crawl keeps anyway, so the cost is noise
    #: (``BENCH_metrics.json`` gates it at <=5%).  With a run
    #: directory, merged registry snapshots are appended to
    #: ``metrics.jsonl`` for ``repro status`` / ``repro metrics``;
    #: without one the per-site deltas are computed and discarded.
    metrics: bool = True
    #: seconds between durable metrics snapshots (the heartbeat
    #: cadence); site completions also snapshot when the interval has
    #: lapsed, and a final snapshot always lands before the run ends
    metrics_interval: float = 10.0
    #: durability layer every checkpoint write goes through (shard
    #: appends, manifest/quarantine/result write-then-rename).  The
    #: default retries transient OSErrors with torn-tail rollback;
    #: swap in :class:`repro.core.storage.FaultyStorage` to chaos-test
    #: the crawl against ENOSPC/EIO/torn writes (``repro chaos
    #: --storage``)
    storage: Storage = field(default_factory=Storage)


class SurveyInterrupted(RuntimeError):
    """The crawl drained cleanly after SIGTERM/SIGINT.

    Raised by :func:`run_survey` once in-flight visits have finished,
    all shards are flushed and fsynced, and the manifest is stamped
    ``interrupted``.  The CLI maps it to exit code 3; ``--resume``
    picks the run back up bit-identically.
    """

    def __init__(self, message: str, run_dir: Optional[str] = None):
        super().__init__(message)
        self.run_dir = run_dir


class _DrainGuard:
    """SIGTERM/SIGINT → graceful drain, second signal → hard stop.

    Installed around a crawl (main thread only; worker threads and
    subprocesses leave signal state alone).  The first signal merely
    sets :attr:`requested` — the serial loop stops before its next
    site and the parallel supervisor stops dispatching while letting
    in-flight visits finish against their budgets.  A second signal
    means the operator is done waiting: it raises
    ``KeyboardInterrupt`` from the handler, abandoning the drain (the
    checkpoint is still crash-consistent; at most the in-flight sites
    are re-measured on resume).
    """

    _SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.requested = False
        self.signum: Optional[int] = None
        self._previous: Dict[int, object] = {}

    def _handle(self, signum, frame) -> None:
        if self.requested:
            raise KeyboardInterrupt(
                "second signal during drain — aborting hard"
            )
        self.requested = True
        self.signum = signum

    def __enter__(self) -> "_DrainGuard":
        if threading.current_thread() is threading.main_thread():
            for signum in self._SIGNALS:
                try:
                    self._previous[signum] = signal.signal(
                        signum, self._handle
                    )
                except (ValueError, OSError):
                    continue
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError, TypeError):
                pass
        self._previous.clear()


@dataclass
class SurveyResult:
    """Everything the crawl measured, ready for analysis."""

    conditions: Tuple[str, ...]
    visits_per_site: int
    domains: List[str]
    #: condition -> domain -> measurement
    measurements: Dict[str, Dict[str, SiteMeasurement]]
    #: traffic weight per domain (Figure 5)
    visit_weights: Dict[str, float]
    #: ground truth for the external validation (Figure 9)
    manual_only: Dict[str, List[str]]
    registry: FeatureRegistry
    #: crawl duration, measured on the monotonic clock
    #: (``time.perf_counter``) so NTP adjustments cannot skew it
    wall_seconds: float = 0.0
    #: compile-cache counters accumulated over the crawl (hits, misses,
    #: evictions, error_hits, parse_seconds, compiled_bytes, entries),
    #: summed across the parent and every parallel worker
    compile_cache: Dict[str, float] = field(default_factory=dict)
    #: exclusive wall seconds per pipeline phase (fetch / parse /
    #: execute / monkey), likewise summed across processes
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: process-fault counters from the parallel supervisor (watchdog
    #: kills, frame corruptions absorbed, stale lease results fenced,
    #: typed worker faults, spawn retries, lease revocations, memory
    #: recycles) — zero-valued entries omitted.  Observability only:
    #: deliberately excluded from serialization and the survey digest,
    #: because what was *measured* must not depend on which faults the
    #: run survived.
    process_faults: Dict[str, int] = field(default_factory=dict)

    # -- views -----------------------------------------------------------

    def measurement(self, condition: str, domain: str) -> SiteMeasurement:
        return self.measurements[condition][domain]

    def measured_domains(self, condition: str) -> List[str]:
        return [
            d for d in self.domains
            if self.measurements[condition][d].measured
        ]

    def failed_domains(self, condition: str) -> List[DomainFailure]:
        """Unmeasured domains, each carrying its failure cause.

        The elements are plain strings (``DomainFailure`` subclasses
        ``str``) annotated with ``cause``, ``attempts`` and
        ``transient`` for the failure report.
        """
        out: List[DomainFailure] = []
        for d in self.domains:
            m = self.measurements[condition][d]
            if not m.measured:
                out.append(DomainFailure(
                    d,
                    cause=m.failure_reason,
                    attempts=m.attempts,
                    transient=m.transient_failure,
                    budget_cause=m.budget_cause,
                    overshoot=m.budget_overshoot,
                ))
        return out

    def retried_domains(self, condition: str) -> List[str]:
        """Domains that needed more than one measurement attempt."""
        return [
            d for d in self.domains
            if self.measurements[condition][d].attempts > 1
        ]

    def quarantined_domains(self, condition: str) -> List[str]:
        """Domains the watchdog quarantined instead of measuring."""
        return [
            d for d in self.domains
            if self.measurements[condition][d].budget_cause
            == QUARANTINE_CAUSE
            and not self.measurements[condition][d].measured
        ]

    def telemetry_totals(self, condition: str) -> Dict[str, int]:
        """Condition-wide sums of the canonical per-site counters."""
        totals = {name: 0 for name in TELEMETRY_COUNTERS}
        for measurement in self.measurements[condition].values():
            for name in TELEMETRY_COUNTERS:
                totals[name] += getattr(measurement, name)
        return totals

    def degraded_domains(self, condition: str) -> List[str]:
        """Measured domains that lost resources along the way.

        Disjoint from :meth:`failed_domains` by construction (degraded
        requires ``measured``): these sites have real numbers that are
        lower bounds, versus failed sites which have none.
        """
        return [
            d for d in self.domains
            if self.measurements[condition][d].degraded_measurement
        ]

    def commonly_measured_domains(self) -> List[str]:
        """Domains measured under every condition (block-rate joins)."""
        out = []
        for domain in self.domains:
            if all(
                self.measurements[c][domain].measured
                for c in self.conditions
            ):
                out.append(domain)
        return out

    def feature_sites(self, condition: str) -> Dict[str, Set[str]]:
        """feature name -> set of domains using it."""
        index: Dict[str, Set[str]] = {}
        for domain in self.measured_domains(condition):
            for feature in self.measurements[condition][domain].features:
                index.setdefault(feature, set()).add(domain)
        return index

    def standard_sites(self, condition: str) -> Dict[str, Set[str]]:
        """standard abbrev -> set of domains using it."""
        index: Dict[str, Set[str]] = {
            s.abbrev: set() for s in self.registry.standards()
        }
        for domain in self.measured_domains(condition):
            measurement = self.measurements[condition][domain]
            for abbrev in measurement.standards_used():
                index[abbrev].add(domain)
        return index

    def total_pages_visited(self) -> int:
        return sum(
            m.pages
            for by_domain in self.measurements.values()
            for m in by_domain.values()
        )

    def total_invocations(self) -> int:
        return sum(
            m.invocations
            for by_domain in self.measurements.values()
            for m in by_domain.values()
        )


def _build_crawler(
    web: SyntheticWeb,
    registry: FeatureRegistry,
    config: SurveyConfig,
    condition: str,
) -> SiteCrawler:
    extensions = BrowsingCondition.extensions_for(
        condition,
        filter_list=builtin_filter_list(web.ecosystem),
        tracker_db=builtin_tracker_database(web.ecosystem),
    )
    browser_config = config.browser
    if browser_config.engine != config.engine:
        browser_config = replace(browser_config, engine=config.engine)
    browser = Browser(
        registry,
        # The jitter seed derives from the survey seed, so every
        # worker — forked, spawned or resumed — computes identical
        # backoff delays for the same (url, attempt).
        Fetcher(web, resilience=config.resilience.seeded(config.seed)),
        blocking_extensions=extensions,
        config=browser_config,
    )
    return SiteCrawler(
        browser, config.crawl, condition=condition, budget=config.budget
    )


def _measure_site_once(
    crawler: SiteCrawler,
    registry: FeatureRegistry,
    config: SurveyConfig,
    condition: str,
    domain: str,
) -> SiteMeasurement:
    measurement = SiteMeasurement(domain=domain, condition=condition)
    for round_index in range(1, config.visits_per_site + 1):
        result = crawler.visit_site(domain, round_index, seed=config.seed)
        measurement.add_round(result, registry)
    return measurement


def _measure_site_attempts(
    crawler: SiteCrawler,
    registry: FeatureRegistry,
    config: SurveyConfig,
    condition: str,
    domain: str,
) -> SiteMeasurement:
    """Measure one site under the retry policy.

    Re-runs a fully failed measurement when the failure was transient
    (or always, with ``retry_deterministic``), sleeping the policy's
    exponential backoff between attempts.  Because each attempt reseeds
    from (seed, domain, round, condition), a retried site that finally
    succeeds is bit-identical to one that never failed.  An exception
    escaping the crawl machinery is recorded as that site's failure
    cause — one hostile site must not abort a 10,000-site run.
    (``KeyboardInterrupt``/``SystemExit`` still propagate, so an
    operator can stop a checkpointed run and resume it later.)
    """
    policy = config.retry
    attempts = max(1, policy.attempts)
    measurement = SiteMeasurement(domain=domain, condition=condition)
    for attempt in range(1, attempts + 1):
        with obs.span("attempt", n=attempt):
            try:
                measurement = _measure_site_once(
                    crawler, registry, config, condition, domain
                )
            except (MemoryError, BudgetExceeded, SurveyInterrupted):
                # Not site failures, and recording them here would hide
                # them: a MemoryError means this *process* can no longer
                # be trusted (the parallel worker converts it into a
                # typed fault report and recycles itself); a
                # BudgetExceeded escaping this far means the crawler's
                # degrade-to-partial path is broken (swallowing it
                # would mask the bug as a per-site failure); a drain
                # interrupt must stop the loop, not consume a retry.
                raise
            except Exception as error:
                measurement = SiteMeasurement(
                    domain=domain, condition=condition
                )
                measurement.failure_reason = "%s: %s" % (
                    type(error).__name__, error
                )
                measurement.transient_failure = bool(
                    getattr(error, "transient", False)
                )
                obs.event("attempt-failed",
                          reason=measurement.failure_reason)
        measurement.attempts = attempt
        if measurement.measured:
            break
        if attempt >= attempts:
            break
        if not (measurement.transient_failure
                or policy.retry_deterministic):
            break
        delay = policy.delay(attempt)
        obs.event("site-retry", next_attempt=attempt + 1, delay=delay)
        if delay > 0:
            time.sleep(delay)
    return measurement


def _measure_site(
    crawler: SiteCrawler,
    registry: FeatureRegistry,
    config: SurveyConfig,
    condition: str,
    domain: str,
    lease_epoch: Optional[int] = None,
) -> Tuple[SiteMeasurement, Optional[Dict[str, object]],
           Optional[Dict[str, int]]]:
    """Measure one site; pairs the measurement with trace + metrics.

    The trace is the serialized ``site`` span tree when a tracer is
    installed, else None.  The site span is self-contained — no
    run-level parent — so a resumed run's traces merge cleanly with
    the interrupted run's.  A fenced run's lease epoch is recorded as
    an *unstable* ``lease`` event: visible in the profiling trace,
    excluded from the structural digest (a re-leased site's epoch 2 is
    scheduling history, not measurement content).

    The third element is the site's deterministic metrics delta
    (:func:`repro.core.runmetrics.wire_delta`): the cumulative fetcher
    and metered-interpreter counters snapshotted around the site in
    the measuring process, so they cover exactly this site's work
    whatever process measured it.  None when metrics are off.
    """
    before = None
    if config.metrics:
        fetcher = crawler.browser.fetcher
        before = (
            fetcher.requests_issued, fetcher.requests_failed,
            fetcher.requests_short_circuited, fetcher.bytes_fetched,
            crawler.steps_executed, crawler.allocations_counted,
        )
    tracer = obs.current_tracer()
    trace = None
    if tracer is None:
        measurement = _measure_site_attempts(
            crawler, registry, config, condition, domain
        )
    else:
        with tracer.span("site", domain=domain, condition=condition):
            if lease_epoch is not None:
                tracer.event("lease", stable=False, epoch=lease_epoch)
            measurement = _measure_site_attempts(
                crawler, registry, config, condition, domain
            )
            tracer.set_attrs(attempts=measurement.attempts,
                             measured=measurement.measured)
        root = tracer.take_root()
        trace = obs.span_to_dict(root) if root is not None else None
    wire = None
    if before is not None:
        fetcher = crawler.browser.fetcher
        wire = runmetrics.wire_delta(
            requests=fetcher.requests_issued - before[0],
            requests_failed=fetcher.requests_failed - before[1],
            short_circuited=(
                fetcher.requests_short_circuited - before[2]
            ),
            bytes_fetched=fetcher.bytes_fetched - before[3],
            steps=crawler.steps_executed - before[4],
            allocations=crawler.allocations_counted - before[5],
        )
    return measurement, trace, wire


def resolve_start_method(requested: Optional[str] = None) -> str:
    """The multiprocessing start method a parallel crawl should use.

    Prefers ``fork`` (workers inherit the pre-warmed compile cache and
    the generated web through copy-on-write memory, so nothing is
    pickled), but falls back to ``spawn`` on platforms without fork —
    and honors an explicit request, validated against what the
    platform actually offers.
    """
    import multiprocessing

    available = multiprocessing.get_all_start_methods()
    if requested is not None:
        if requested not in available:
            raise ValueError(
                "start method %r unavailable on this platform "
                "(offers: %s)" % (requested, ", ".join(available))
            )
        return requested
    return "fork" if "fork" in available else "spawn"


def _prewarm_compile_cache(
    web: SyntheticWeb, domains: Sequence[str], lower: bool = False
) -> int:
    """Compile the crawl's high-reuse script bodies up front.

    Run in the parent before forking (children inherit the hot cache)
    and again in each spawn-started worker (which inherits nothing).
    Idempotent: warming an already-warm cache is a hash lookup per
    body.  With ``lower=True`` (a compiled-engine crawl) each body is
    also closure-lowered, so workers inherit the code cache too.
    """
    return shared_cache().prewarm(web.script_bodies(domains), lower=lower)


# Worker-process state for the parallel crawl, rebuilt by the pool
# initializer from explicitly passed arguments.  Under fork the args
# are inherited by reference (nothing is pickled — webs can be
# hundreds of MB); under spawn they are pickled once per worker, which
# is what makes the fallback correct on fork-less platforms.
_worker_state: Dict[str, object] = {}

#: Per-worker baseline of the inherited (fork) compile-cache/timing
#: counters, so each worker reports only its own delta to the parent.
_worker_baseline: Dict[str, Dict[str, float]] = {}


def _parallel_worker_init(
    web: SyntheticWeb,
    registry: FeatureRegistry,
    config: SurveyConfig,
    condition: str,
    domains: Sequence[str],
) -> None:
    _worker_baseline["cache"] = shared_cache().counters()
    _worker_baseline["phases"] = phase_snapshot()
    _prewarm_compile_cache(web, domains, lower=config.engine == "compiled")
    # Tracer goes in after the prewarm so warm-up parses never build
    # spans; each worker records its own sites' traces and ships them
    # with the measurement over the result pipe.
    if config.trace:
        obs.set_tracer(obs.Tracer())
    if config.metrics:
        # Worker registries carry only process-local (unstable) series
        # — RSS, compile-cache mirrors; the stable per-site deltas ride
        # the result payloads instead, so a killed worker's registry
        # can vanish without perturbing the deterministic totals.
        runmetrics.set_registry(runmetrics.MetricsRegistry())
    _worker_state["crawler"] = _build_crawler(
        web, registry, config, condition
    )
    _worker_state["registry"] = registry
    _worker_state["config"] = config
    _worker_state["condition"] = condition


def _parallel_measure(
    domain: str,
    lease_epoch: Optional[int] = None,
) -> Tuple[SiteMeasurement, Optional[Dict[str, object]],
           Optional[Dict[str, int]], int,
           Dict[str, float], Dict[str, float]]:
    """Measure one site; piggyback this worker's cumulative stats.

    The parent keeps the per-pid elementwise maximum (the counters are
    monotonic), so whichever result arrives last per worker carries
    its totals.
    """
    measurement, trace, wire = _measure_site(
        _worker_state["crawler"],
        _worker_state["registry"],
        _worker_state["config"],
        _worker_state["condition"],
        domain,
        lease_epoch=lease_epoch,
    )
    cache_delta = CompileCache.counter_delta(
        shared_cache().counters(), _worker_baseline["cache"]
    )
    phases = phase_delta(_worker_baseline["phases"])
    return measurement, trace, wire, os.getpid(), cache_delta, phases


def _quarantined_measurement(
    domain: str, condition: str, threshold: int
) -> SiteMeasurement:
    """The deterministic record a poison site gets instead of a crawl.

    Depends only on the strike threshold — never on timing — so a
    killed-and-resumed run synthesizes byte-identical records.
    """
    measurement = SiteMeasurement(domain=domain, condition=condition)
    measurement.failure_reason = (
        "%s: site killed or hung %d crawl workers"
        % (QUARANTINE_CAUSE, threshold)
    )
    measurement.transient_failure = False
    measurement.budget_cause = QUARANTINE_CAUSE
    measurement.attempts = threshold
    return measurement


def _quarantined_trace(
    domain: str, condition: str, threshold: int
) -> Dict[str, object]:
    """The trace a quarantined site gets: a synthetic site span.

    Built from the same inputs as :func:`_quarantined_measurement`
    (never from timing), so resumed runs reproduce it byte for byte.
    """
    return {
        "name": "site",
        "attrs": {
            "domain": domain,
            "condition": condition,
            "attempts": threshold,
            "measured": False,
        },
        "real_ms": 0.0,
        "children": [{
            "name": "quarantined",
            "attrs": {"strikes": threshold},
            "real_ms": 0.0,
        }],
    }


def _send_frame(conn, obj: object, kind: int = ipc.KIND_RESULT) -> None:
    """Pickle and frame one message onto a result pipe."""
    conn.send_bytes(ipc.encode_frame(pickle.dumps(obj), kind=kind))


def _worker_metrics_snapshot(governor=None):
    """This worker's metrics snapshot for the supervisor, or None.

    Freshens the process-local mirrors first: the compile-cache
    cumulative counters (labeled by pid, max-merged) and the RSS
    high-water gauge — the governor's last probe when one is polling,
    a direct probe otherwise.
    """
    registry = runmetrics.current_registry()
    if registry is None:
        return None
    proc = str(os.getpid())
    counters = shared_cache().counters()
    registry.counter_floor("compile_cache_hits_total",
                           counters.get("hits", 0), proc=proc)
    registry.counter_floor("compile_cache_misses_total",
                           counters.get("misses", 0), proc=proc)
    rss = governor.rss_mb if governor is not None else 0.0
    if not rss:
        rss = _default_rss_probe()
    if rss:
        registry.set_gauge("worker_rss_mb", round(rss, 1), proc=proc)
    return registry.snapshot()


def _watchdog_worker_main(
    slot: int,
    heartbeats,
    task_conn,
    result_conn,
    web: SyntheticWeb,
    registry: FeatureRegistry,
    config: SurveyConfig,
    condition: str,
    domains: Sequence[str],
) -> None:
    """A supervised crawl worker: register heartbeat, init, measure.

    Tasks arrive as ``(index, domain, lease_epoch)`` triples over a
    dedicated pipe; ``None`` means shut down.  Results go back over
    the slot's own result pipe as checksummed :mod:`repro.core.ipc`
    frames: a ``KIND_RESULT`` frame carrying the pickled ``(slot,
    index, domain, lease_epoch, payload)`` (payload matching
    :func:`_parallel_measure`'s return value), or a ``KIND_FAULT``
    frame carrying a typed fault report when the worker must recycle
    itself (currently: ``MemoryError`` escaping a measurement).  The
    framing means a worker dying mid-write tears at a frame boundary
    the supervisor's decoder detects and resynchronizes past — raw
    pickles on the pipe could poison the parent.

    Plain one-writer pipes, not ``multiprocessing.Queue``: a queue
    shares one write-lock semaphore among every producer, and a worker
    dying (``os._exit`` on a crasher page, or the watchdog's SIGKILL)
    between writing its bytes and releasing that lock strands the
    semaphore — every other worker's feeder thread then blocks forever
    and their results silently never arrive.  With a pipe per slot a
    dying writer can only tear its *own* channel, which the parent
    reads as EOF and handles as the worker death it is.
    """

    # Workers must outlive a Ctrl-C/SIGTERM aimed at the crawl: both
    # usually hit the whole process group, and a worker dying mid-visit
    # would turn a graceful drain into watchdog strikes.  The
    # supervisor owns worker lifetime — it drains in-flight sites, then
    # shuts workers down over their task pipes (or SIGKILLs them).
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    except (ValueError, OSError):
        pass  # non-main thread or exotic platform: best-effort

    def beat() -> None:
        heartbeats[slot] = time.monotonic()

    set_heartbeat(beat)
    beat()
    # Deterministic process-fault injection (``repro chaos --proc``):
    # the plan rides on the wrapped web source and arms per-(domain,
    # epoch) faults inside this process.
    plan = getattr(web, "proc_chaos", None)
    if plan is not None:
        set_alloc_hook(plan.on_allocation)
    governor: Optional[MemoryGovernor] = None
    if config.max_worker_rss_mb is not None:
        governor = MemoryGovernor(config.max_worker_rss_mb)
        set_memory_governor(governor)
    _parallel_worker_init(web, registry, config, condition, domains)
    while True:
        # Poll with a short timeout and beat on every pass, so an
        # *idle* worker (result sent, next task not yet assigned)
        # keeps a fresh heartbeat.  A stale heartbeat then means
        # exactly one thing — stuck inside a measurement — which is
        # what the watchdog punishes.
        if not task_conn.poll(0.2):
            beat()
            continue
        try:
            task = task_conn.recv()
        except (EOFError, OSError):
            break  # parent closed our pipe: we are being replaced
        if task is None:
            break
        index, domain, lease_epoch = task
        beat()
        if plan is not None:
            plan.begin_task(domain, lease_epoch)
        try:
            payload = _parallel_measure(domain, lease_epoch=lease_epoch)
        except MemoryError as error:
            # The allocator (or an injected fault at an allocation
            # boundary) failed this process: nothing it computes from
            # here on can be trusted.  Report the typed fault — the
            # tiny frame fits the pipe buffer, so it lands even though
            # we exit immediately after — and recycle; the supervisor
            # strikes the site and re-leases it to a fresh worker.
            try:
                _send_frame(result_conn, {
                    "slot": slot, "index": index, "domain": domain,
                    "lease_epoch": lease_epoch, "cause": "memory-error",
                    "detail": str(error) or "MemoryError",
                }, kind=ipc.KIND_FAULT)
            except (BrokenPipeError, OSError):
                pass
            break
        if config.metrics:
            # Ship the worker's registry (unstable series only: cache
            # mirrors, RSS) ahead of the result.  Cumulative, so a lost
            # frame just means the supervisor keeps a slightly staler
            # view — never wrong totals.
            snapshot = _worker_metrics_snapshot(governor)
            if snapshot is not None:
                try:
                    _send_frame(
                        result_conn,
                        {"pid": os.getpid(), "metrics": snapshot},
                        kind=ipc.KIND_METRICS,
                    )
                except (BrokenPipeError, OSError):
                    pass
        if plan is not None:
            for noise in plan.pipe_noise(domain, lease_epoch):
                try:
                    result_conn.send_bytes(noise)
                except (BrokenPipeError, OSError):
                    pass
        try:
            _send_frame(
                result_conn,
                (slot, index, domain, lease_epoch, payload),
            )
        except (BrokenPipeError, OSError):
            break  # parent closed our pipe: we are being replaced
        beat()
        if governor is not None and governor.pressured:
            # The measurement just shipped carries the memory-pressure
            # cause; ``ru_maxrss`` is a high-water mark this process
            # can never shed, so exit and let the supervisor respawn a
            # fresh worker into the slot.
            break


class _CrawlSupervisor:
    """A watchdog-supervised worker fleet for one condition's crawl.

    Replaces the plain multiprocessing pool: each worker is an owned
    ``Process`` with its *own* task and result pipes, so the parent
    always knows exactly which site every worker holds — there is no
    shared queue whose in-flight items (or write-lock semaphore) a
    dead worker could strand.  Workers
    stamp a shared heartbeat array from the fetcher and page-boundary
    hooks; one whose heartbeat goes stale past ``hang_timeout`` while
    holding a site (or that dies outright, e.g. a crasher page taking
    the process down) is SIGKILLed, the site gets a strike, and a
    fresh worker takes the slot.  A site reaching
    ``quarantine_threshold`` strikes is quarantined: it gets a
    deterministic failure record and is never dispatched again —
    strikes persist in the checkpoint, so a resumed run honors them.

    Results are buffered and recorded strictly in submission order, so
    checkpoint shards are appended exactly as a serial crawl would
    append them.
    """

    _POLL_SECONDS = 0.05

    def __init__(
        self,
        web: SyntheticWeb,
        registry: FeatureRegistry,
        config: SurveyConfig,
        condition: str,
        pending: List[str],
        checkpoint=None,
        drain: Optional[_DrainGuard] = None,
        pump: Optional["_MetricsPump"] = None,
    ) -> None:
        import multiprocessing

        self.web = web
        self.registry = registry
        self.config = config
        self.condition = condition
        self.pending = list(pending)
        self.checkpoint = checkpoint
        self.drain_guard = drain
        self.metrics_pump = pump
        self.context = multiprocessing.get_context(
            resolve_start_method(config.start_method)
        )
        self.n_workers = max(1, min(config.workers, len(self.pending)))
        self.heartbeats = self.context.Array("d", self.n_workers)
        self.workers: List = [None] * self.n_workers
        #: parent-side send end of each slot's task pipe
        self.task_conns: List = [None] * self.n_workers
        #: parent-side receive end of each slot's result pipe
        self.result_conns: List = [None] * self.n_workers
        #: per-slot frame decoder for the result pipe (reset on spawn:
        #: a fresh worker must not inherit its predecessor's torn tail)
        self.decoders: List[Optional[ipc.FrameDecoder]] = (
            [None] * self.n_workers
        )
        #: slot -> (index, domain, lease_epoch, assigned_at) while a
        #: site is in flight
        self.assigned: Dict[int, Tuple[int, str, int, float]] = {}
        #: strike fallback when no checkpoint persists them
        self.local_strikes: Dict[str, int] = {}
        #: lease-epoch fallback when no checkpoint persists them
        self.local_leases: Dict[str, int] = {}
        self.worker_cache: Dict[int, Dict[str, float]] = {}
        self.worker_phases: Dict[int, Dict[str, float]] = {}
        #: indices already finished — dedupes the race where a struck
        #: worker's result was in the pipe when it was killed
        self.finished: Set[int] = set()
        #: index -> (measurement, trace-or-None, lease_epoch-or-None,
        #: wire-metrics-delta-or-None), flushed in order
        self.buffered: Dict[
            int,
            Tuple[SiteMeasurement, Optional[Dict[str, object]],
                  Optional[int], Optional[Dict[str, int]]],
        ] = {}
        self.next_flush = 0
        #: sites a typed worker fault handed back for re-dispatch
        self.requeue: deque = deque()
        #: per-slot corruption slugs awaiting the slot's next good
        #: trace, into which they are folded as unstable frame events
        self.frame_notes: Dict[int, List[str]] = {}
        #: workers killed by the watchdog (observability + tests)
        self.kills = 0
        #: frame-stream corruptions absorbed (garbage, torn writes...)
        self.frame_errors = 0
        #: results rejected for carrying a superseded lease epoch
        self.stale_results = 0
        #: typed KIND_FAULT reports received from workers
        self.worker_faults = 0
        #: leases revoked past ``lease_deadline`` (stragglers re-leased)
        self.lease_releases = 0
        #: injected or real spawn failures retried through
        self.spawn_retries = 0
        #: accepted measurements carrying the memory-pressure cause
        self.memory_recycles = 0

    # -- strikes ---------------------------------------------------------

    def _strike(self, domain: str) -> int:
        if self.checkpoint is not None:
            return self.checkpoint.add_strike(domain)
        count = self.local_strikes.get(domain, 0) + 1
        self.local_strikes[domain] = count
        return count

    def _strike_count(self, domain: str) -> int:
        if self.checkpoint is not None:
            return self.checkpoint.strike_count(domain)
        return self.local_strikes.get(domain, 0)

    # -- fenced leases ---------------------------------------------------

    def _issue_lease(self, domain: str) -> int:
        """The next lease epoch for a dispatch of ``domain``."""
        if self.checkpoint is not None:
            return self.checkpoint.issue_lease(self.condition, domain)
        epoch = self.local_leases.get(domain, 0) + 1
        self.local_leases[domain] = epoch
        return epoch

    def _current_lease(self, domain: str) -> int:
        if self.checkpoint is not None:
            return self.checkpoint.lease_epoch(self.condition, domain)
        return self.local_leases.get(domain, 0)

    # -- worker lifecycle ------------------------------------------------

    _SPAWN_ATTEMPTS = 5

    def _spawn(self, slot: int) -> None:
        """Start a worker into ``slot``, retrying spawn failures.

        ``fork``/``spawn`` can genuinely fail under memory pressure or
        pid exhaustion (EAGAIN/ENOMEM); one failed attempt must not
        abort a crawl the next attempt would carry.  A bounded retry
        also absorbs the proc-chaos arm's injected fork failures.
        Exhausting the attempts re-raises the last error.
        """
        plan = getattr(self.web, "proc_chaos", None)
        last_error: Optional[OSError] = None
        for _ in range(self._SPAWN_ATTEMPTS):
            try:
                if plan is not None:
                    plan.check_spawn()
                task_recv, task_send = self.context.Pipe(duplex=False)
                result_recv, result_send = self.context.Pipe(
                    duplex=False
                )
                process = self.context.Process(
                    target=_watchdog_worker_main,
                    args=(
                        slot, self.heartbeats, task_recv, result_send,
                        self.web, self.registry, self.config,
                        self.condition, self.pending,
                    ),
                    daemon=True,
                )
                self.heartbeats[slot] = time.monotonic()
                try:
                    process.start()
                except OSError:
                    for conn in (task_recv, task_send,
                                 result_recv, result_send):
                        conn.close()
                    raise
            except OSError as error:
                self.spawn_retries += 1
                runmetrics.inc("supervisor_spawn_retries_total")
                last_error = error
                continue
            # Close the child's ends in the parent right away: later
            # forks must not inherit them, or a sibling would hold this
            # slot's write end open and mask the EOF that signals
            # worker death.
            task_recv.close()
            result_send.close()
            self.task_conns[slot] = task_send
            self.result_conns[slot] = result_recv
            self.workers[slot] = process
            self.decoders[slot] = ipc.FrameDecoder(message_aligned=True)
            return
        assert last_error is not None
        raise last_error

    def _kill(self, slot: int) -> None:
        process = self.workers[slot]
        if process is not None:
            if process.is_alive():
                process.kill()  # SIGKILL: a hung worker can't be asked
            process.join()
        self.workers[slot] = None
        for conns in (self.task_conns, self.result_conns):
            if conns[slot] is not None:
                conns[slot].close()
                conns[slot] = None
        self.decoders[slot] = None
        self.frame_notes.pop(slot, None)

    # -- main loop -------------------------------------------------------

    def run(
        self,
        record: Callable[..., None],
        stats: "_CrawlStats",
    ) -> None:
        todo = deque(enumerate(self.pending))
        pump = self.metrics_pump
        if pump is not None:
            pump.hooks.append(self._metrics_gauges)
        try:
            for slot in range(self.n_workers):
                self._spawn(slot)
            while self.next_flush < len(self.pending):
                if (self.drain_guard is not None
                        and self.drain_guard.requested):
                    # Graceful drain: dispatch nothing more, collect
                    # what is in flight, flush the contiguous prefix
                    # to the checkpoint, and hand control back.
                    self._drain_inflight()
                    self._flush(record)
                    break
                self._dispatch(todo)
                self._drain(block=True)
                self._watchdog(todo)
                self._flush(record)
                if pump is not None:
                    pump.maybe()
        finally:
            self._shutdown()
            if pump is not None and self._metrics_gauges in pump.hooks:
                pump.hooks.remove(self._metrics_gauges)
        for cache in self.worker_cache.values():
            stats.add_cache(cache)
        for phases in self.worker_phases.values():
            stats.add_phases(phases)
        stats.add_proc({
            "watchdog_kills": self.kills,
            "frame_errors": self.frame_errors,
            "stale_results": self.stale_results,
            "worker_faults": self.worker_faults,
            "lease_releases": self.lease_releases,
            "spawn_retries": self.spawn_retries,
            "memory_recycles": self.memory_recycles,
        })

    def _dispatch(self, todo) -> None:
        # Sites handed back by typed worker faults go to the front:
        # they were dispatched before everything still in ``todo``.
        while self.requeue:
            todo.appendleft(self.requeue.pop())
        for slot in range(self.n_workers):
            if not todo:
                return
            process = self.workers[slot]
            if process is None or not process.is_alive():
                continue
            if slot in self.assigned:
                continue
            index, domain = todo.popleft()
            if index in self.finished:
                continue
            if (self._strike_count(domain)
                    >= self.config.quarantine_threshold):
                # Struck out since it was (re)queued.
                self.finished.add(index)
                self.buffered[index] = self._quarantine(domain)
                continue
            epoch = self._issue_lease(domain)
            try:
                self.task_conns[slot].send((index, domain, epoch))
            except (BrokenPipeError, OSError):
                # Worker died between the liveness check and the send;
                # requeue and let the watchdog replace the worker.
                # (The issued epoch is skipped — epochs are monotonic,
                # not dense, so a gap fences nothing incorrectly.)
                todo.appendleft((index, domain))
                continue
            self.assigned[slot] = (
                index, domain, epoch, time.monotonic()
            )

    def _drain_inflight(self) -> None:
        """Let assigned sites finish (bounded), dropping the rest.

        Workers ignore the drain signal, so every in-flight visit keeps
        running against its own resource budgets; the wait here is
        bounded by ``hang_timeout`` (the point past which the watchdog
        would have struck the site anyway).  Sites still unfinished at
        the deadline — or held by a worker that died — are simply
        dropped: they were never checkpointed, so resume re-measures
        them bit-identically.  No strikes are charged; a drain is not
        the site's fault.
        """
        timeout = self.config.hang_timeout
        deadline = time.monotonic() + (
            timeout if timeout is not None else 30.0
        )
        while self.assigned and time.monotonic() < deadline:
            self._drain(block=True)
            for slot in list(self.assigned):
                process = self.workers[slot]
                if process is None or not process.is_alive():
                    self._drain()  # last chance for a piped result
                    self.assigned.pop(slot, None)
        self.assigned.clear()

    def _drain(self, block: bool = False) -> None:
        from multiprocessing.connection import wait as connection_wait

        conns = [c for c in self.result_conns if c is not None]
        if not conns:
            return
        timeout = self._POLL_SECONDS if block else 0
        for conn in connection_wait(conns, timeout=timeout):
            slot = self.result_conns.index(conn)
            decoder = self.decoders[slot]
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                # The worker died (possibly mid-send, tearing its own
                # pipe — never anyone else's).  Flush the decoder —
                # whole frames already buffered must not die with the
                # worker — then stop polling the channel; the watchdog
                # handles the corpse.
                conn.close()
                self.result_conns[slot] = None
                if decoder is not None:
                    frames = decoder.finish()
                    self._note_frame_errors(slot, decoder)
                    for frame in frames:
                        self._handle_frame(slot, frame)
                continue
            if decoder is None:
                continue
            runmetrics.observe("ipc_frame_bytes", float(len(data)))
            frames = decoder.feed(data)
            # Corruption notes first: noise preceding a good result on
            # the same pipe belongs to that result's trace.
            self._note_frame_errors(slot, decoder)
            for frame in frames:
                self._handle_frame(slot, frame)

    def _note_frame_errors(self, slot: int, decoder) -> None:
        for error in decoder.take_errors():
            self.frame_errors += 1
            runmetrics.inc("supervisor_frame_corruptions_total",
                           reason=error.reason)
            self.frame_notes.setdefault(slot, []).append(error.reason)

    def _handle_frame(self, slot: int, frame) -> None:
        try:
            obj = pickle.loads(frame.payload)
        except Exception:
            # CRC-valid but unpicklable: a sender bug rather than wire
            # damage, absorbed the same way — the stream stays usable.
            self.frame_errors += 1
            self.frame_notes.setdefault(slot, []).append("bad-payload")
            return
        if frame.kind == ipc.KIND_FAULT:
            self._handle_fault(slot, obj)
        elif frame.kind == ipc.KIND_RESULT:
            self._handle_result(slot, obj)
        elif frame.kind == ipc.KIND_METRICS:
            self._handle_metrics(obj)
        # Unknown kinds are ignored: a newer worker may speak frame
        # kinds this supervisor predates.

    def _handle_metrics(self, report) -> None:
        """Keep the latest registry snapshot shipped by one worker.

        Worker snapshots are cumulative, so only the most recent per
        pid matters, and it is folded into the durable view at
        snapshot-build time — merging every frame as it arrives would
        double-count.
        """
        pump = self.metrics_pump
        if (pump is None or not isinstance(report, dict)
                or not isinstance(report.get("metrics"), dict)):
            return
        pump.worker_metrics[report.get("pid", 0)] = report["metrics"]

    def _metrics_gauges(self) -> None:
        """Refresh supervisor-side gauges just before a snapshot."""
        now = time.monotonic()
        for slot in range(self.n_workers):
            age = max(0.0, now - self.heartbeats[slot])
            runmetrics.set_gauge("worker_heartbeat_age_seconds",
                                 round(age, 3), slot=str(slot))
        runmetrics.set_gauge("crawl_inflight_sites",
                             float(len(self.assigned)))

    def _handle_result(self, slot: int, item) -> None:
        _, index, domain, epoch, payload = item
        self.assigned.pop(slot, None)
        if epoch is not None and epoch != self._current_lease(domain):
            # Fencing: the lease moved on (revoked past its deadline,
            # or struck and re-issued) — this is a replaced worker's
            # late result.  Accepting it could double-count the site
            # or overwrite its successor's record.
            self.stale_results += 1
            runmetrics.inc("supervisor_stale_results_total")
            return
        if index in self.finished:
            return  # a requeued duplicate landed first
        self.finished.add(index)
        measurement, trace, wire, pid, cache, phases = payload
        if trace is not None:
            self._annotate_frame_notes(slot, trace)
        else:
            self.frame_notes.pop(slot, None)
        if measurement.budget_cause == MEMORY_PRESSURE_CAUSE:
            # The worker measured what it could, shipped it, and is
            # about to recycle itself.  The measurement stands (it is
            # honest, if partial); the *site* earns a strike so a
            # repeat offender is eventually quarantined.
            self.memory_recycles += 1
            runmetrics.inc("supervisor_memory_recycles_total")
            self._strike(domain)
        self.buffered[index] = (measurement, trace, epoch, wire)
        self.worker_cache[pid] = _elementwise_max(
            self.worker_cache.get(pid, {}), cache
        )
        self.worker_phases[pid] = _elementwise_max(
            self.worker_phases.get(pid, {}), phases
        )

    def _annotate_frame_notes(self, slot: int, trace) -> None:
        """Fold pending corruption slugs into a trace as frame events.

        The supervisor has no span of its own to attach events to, so
        corruption observed on a slot's pipe is recorded as unstable
        ``frame`` children of the next good site trace off that slot —
        profiling-visible, excluded from the structural digest (what
        the pipe suffered is not part of what the site did).
        """
        notes = self.frame_notes.pop(slot, None)
        if not notes or not isinstance(trace, dict):
            return
        children = trace.setdefault("children", [])
        for reason in notes:
            children.append({
                "name": "frame",
                "attrs": {"reason": reason},
                "real_ms": 0.0,
                "unstable": True,
            })

    def _handle_fault(self, slot: int, report) -> None:
        """A worker announced a typed fault and is recycling itself.

        The site is struck and handed back for re-dispatch under a
        fresh lease (or quarantined at the strike threshold); the
        worker's corpse is the watchdog's to replace.
        """
        self.worker_faults += 1
        runmetrics.inc("supervisor_worker_faults_total")
        assignment = self.assigned.pop(slot, None)
        if assignment is None:
            return
        index, domain, _epoch, _at = assignment
        if index in self.finished:
            return
        strikes = self._strike(domain)
        if strikes >= self.config.quarantine_threshold:
            self.finished.add(index)
            self.buffered[index] = self._quarantine(domain)
        else:
            self.requeue.append((index, domain))

    def _watchdog(self, todo) -> None:
        timeout = self.config.hang_timeout
        lease_deadline = self.config.lease_deadline
        now = time.monotonic()
        for slot in range(self.n_workers):
            process = self.workers[slot]
            alive = process is not None and process.is_alive()
            assignment = self.assigned.get(slot)
            if assignment is None:
                if not alive and (todo or self.requeue):
                    # Died idle (e.g. crashed in init, or recycled
                    # after a fault/pressure exit): replace it.
                    self._kill(slot)
                    self._spawn(slot)
                continue
            index, domain, _epoch, assigned_at = assignment
            last_beat = max(assigned_at, self.heartbeats[slot])
            hung = (
                alive and timeout is not None
                and now - last_beat > timeout
            )
            # A lease deadline bounds *total* time on a site: a worker
            # can keep a fresh heartbeat forever while grinding, but
            # past the deadline the site is a straggler — revoke the
            # lease and re-issue it elsewhere.  The revoked worker is
            # killed, not trusted to stop: if its result were already
            # in the pipe, the stale epoch fences it off anyway.
            overdue = (
                alive and lease_deadline is not None
                and now - assigned_at > lease_deadline
            )
            if alive and not hung and not overdue:
                continue
            # The worker died, hung or overstayed its lease on this
            # site.  Last chance for an in-flight result to disqualify
            # the strike:
            self._drain()
            if slot not in self.assigned:
                continue  # its result landed after all
            del self.assigned[slot]
            self._kill(slot)
            self.kills += 1
            runmetrics.inc("supervisor_watchdog_kills_total")
            if overdue and not hung:
                self.lease_releases += 1
                runmetrics.inc("supervisor_lease_revocations_total")
            strikes = self._strike(domain)
            if index not in self.finished:
                if strikes >= self.config.quarantine_threshold:
                    self.finished.add(index)
                    self.buffered[index] = self._quarantine(domain)
                else:
                    todo.append((index, domain))
            self._spawn(slot)

    def _quarantine(
        self, domain: str
    ) -> Tuple[SiteMeasurement, Optional[Dict[str, object]],
               Optional[int], Optional[Dict[str, int]]]:
        threshold = self.config.quarantine_threshold
        measurement = _quarantined_measurement(
            domain, self.condition, threshold
        )
        trace = (
            _quarantined_trace(domain, self.condition, threshold)
            if self.config.trace else None
        )
        # A fresh epoch fences off any late result from the strikes
        # that led here, and gives fsck the invariant it checks: the
        # surviving record carries the site's highest epoch.  No wire
        # delta: a synthesized measurement did no metered work.
        return measurement, trace, self._issue_lease(domain), None

    def _flush(self, record) -> None:
        while self.next_flush in self.buffered:
            measurement, trace, epoch, wire = self.buffered.pop(
                self.next_flush
            )
            record(measurement, trace, epoch, wire)
            self.next_flush += 1

    def _shutdown(self) -> None:
        for slot in range(self.n_workers):
            process = self.workers[slot]
            tasks = self.task_conns[slot]
            if (process is not None and process.is_alive()
                    and tasks is not None):
                try:
                    tasks.send(None)
                except (BrokenPipeError, OSError, ValueError):
                    pass
        deadline = time.monotonic() + 5.0
        for slot in range(self.n_workers):
            process = self.workers[slot]
            if process is None:
                continue
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            self._kill(slot)


def _crawl_condition_parallel(
    web: SyntheticWeb,
    registry: FeatureRegistry,
    config: SurveyConfig,
    condition: str,
    pending: List[str],
    record: Callable[..., None],
    stats: "_CrawlStats",
    checkpoint=None,
    drain: Optional[_DrainGuard] = None,
    pump=None,
) -> None:
    supervisor = _CrawlSupervisor(
        web, registry, config, condition, pending, checkpoint,
        drain=drain, pump=pump,
    )
    supervisor.run(record, stats)


def _elementwise_max(
    a: Dict[str, float], b: Dict[str, float]
) -> Dict[str, float]:
    out = dict(a)
    for key, value in b.items():
        out[key] = max(out.get(key, 0.0), value)
    return out


class _CrawlStats:
    """Accumulates compile-cache and phase-timing deltas for a run."""

    def __init__(self) -> None:
        self.cache: Dict[str, float] = {}
        self.phases: Dict[str, float] = {}
        self.proc: Dict[str, int] = {}
        self._cache_start = shared_cache().counters()
        self._phases_start = phase_snapshot()

    def add_cache(self, delta: Dict[str, float]) -> None:
        for key, value in delta.items():
            self.cache[key] = self.cache.get(key, 0.0) + value

    def add_phases(self, delta: Dict[str, float]) -> None:
        merge_phases(self.phases, delta)

    def add_proc(self, delta: Dict[str, int]) -> None:
        for key, value in delta.items():
            self.proc[key] = self.proc.get(key, 0) + value

    def proc_faults(self) -> Dict[str, int]:
        """The nonzero process-fault counters (zero is not news)."""
        return {k: v for k, v in self.proc.items() if v}

    def finish(self) -> None:
        """Fold in the parent process's own delta since construction."""
        self.add_cache(CompileCache.counter_delta(
            shared_cache().counters(), self._cache_start
        ))
        self.add_phases(phase_delta(self._phases_start))
        self.cache["entries"] = float(len(shared_cache()))


class _MetricsPump:
    """Durably snapshots the merged metrics registry on a cadence.

    The parent registry holds the run's stable series (rehydrated from
    the shards on resume, fed by ``record``) plus the parent's own
    unstable gauges; each worker's latest cumulative snapshot arrives
    over :data:`~repro.core.ipc.KIND_METRICS` frames and is folded in
    only at snapshot-build time.  Every snapshot is appended to
    ``metrics.jsonl`` through the checkpoint's crash-safe storage
    path, so a torn tail is repairable and ``seq`` continues across
    resume without duplication.
    """

    def __init__(
        self,
        registry: "runmetrics.MetricsRegistry",
        checkpoint,
        total: int,
        interval: float,
    ) -> None:
        self.registry = registry
        self.checkpoint = checkpoint
        self.total = total
        self.interval = interval
        self.seq = checkpoint.last_metrics_seq()
        self._last = time.monotonic()
        #: pid -> latest cumulative snapshot shipped by that worker
        self.worker_metrics: Dict[int, Dict[str, object]] = {}
        #: pre-snapshot gauge refreshers (supervisor heartbeat ages)
        self.hooks: List[Callable[[], None]] = []

    def merged(self) -> Dict[str, object]:
        """The run-wide snapshot: parent registry + worker views."""
        self._parent_mirrors()
        for hook in list(self.hooks):
            hook()
        snapshot = self.registry.snapshot()
        for worker in self.worker_metrics.values():
            snapshot = runmetrics.merge_snapshots(snapshot, worker)
        return snapshot

    def _parent_mirrors(self) -> None:
        """Refresh the parent process's own unstable mirrors."""
        proc = str(os.getpid())
        counters = shared_cache().counters()
        self.registry.counter_floor("compile_cache_hits_total",
                                    counters.get("hits", 0), proc=proc)
        self.registry.counter_floor("compile_cache_misses_total",
                                    counters.get("misses", 0),
                                    proc=proc)
        rss = _default_rss_probe()
        if rss:
            self.registry.set_gauge("worker_rss_mb", round(rss, 1),
                                    proc=proc)

    def maybe(self, force: bool = False, kind: str = "snapshot") -> None:
        """Append a snapshot if the cadence (or ``force``) says so."""
        now = time.monotonic()
        if not force and now - self._last < self.interval:
            return
        self._last = now
        self.seq += 1
        self.checkpoint.append_metrics({
            "kind": kind,
            "seq": self.seq,
            "at": round(time.time(), 3),
            "done": self.checkpoint.done_counts(),
            "total": self.total,
            "metrics": self.merged(),
        })

    def final(self) -> None:
        """The run's last word: totals equal the durable shards'."""
        self.maybe(force=True, kind="final")


def _crawl_condition(
    web: SyntheticWeb,
    registry: FeatureRegistry,
    config: SurveyConfig,
    condition: str,
    domains: List[str],
    progress: Optional[ProgressCallback],
    checkpoint=None,
    stats: Optional[_CrawlStats] = None,
    drain: Optional[_DrainGuard] = None,
    pump: Optional[_MetricsPump] = None,
) -> Dict[str, SiteMeasurement]:
    """Measure one condition, streaming each site to the checkpoint."""
    done = checkpoint.done(condition) if checkpoint is not None else {}
    pending = [d for d in domains if d not in done]
    by_domain: Dict[str, SiteMeasurement] = dict(done)
    if done and progress is not None:
        progress(condition, len(done), len(domains))
    completed = len(done)

    def record(
        measurement: SiteMeasurement,
        trace: Optional[Dict[str, object]] = None,
        lease_epoch: Optional[int] = None,
        site_metrics: Optional[Dict[str, int]] = None,
    ) -> None:
        nonlocal completed
        by_domain[measurement.domain] = measurement
        if checkpoint is not None:
            # Trace first: resume skips sites whose *measurement* is
            # on disk, so a crash between the two appends leaves an
            # orphan trace (re-recorded, last-wins, on resume) rather
            # than a measured site whose trace is forever missing.
            if trace is not None:
                checkpoint.append_trace(
                    condition, measurement.domain, trace
                )
            checkpoint.append(measurement, lease_epoch=lease_epoch,
                              metrics=site_metrics)
        # Ingest strictly *after* the durable append: the registry's
        # stable totals then never exceed what the shards hold, so a
        # snapshot taken between any two sites cross-checks clean.
        metrics_registry = runmetrics.current_registry()
        if metrics_registry is not None:
            metrics_registry.ingest_site(
                condition, measurement, site_metrics
            )
        if pump is not None:
            pump.maybe()
        completed += 1
        if progress is not None and completed % 50 == 0:
            progress(condition, completed, len(domains))

    # Sites already quarantined — in this run (an earlier condition) or
    # the run being resumed — are never dispatched again: they get the
    # same deterministic record a live quarantine would synthesize.
    if checkpoint is not None and pending:
        threshold = config.quarantine_threshold
        poisoned = {
            d for d in pending
            if checkpoint.strike_count(d) >= threshold
        }
        for domain in pending:
            if domain in poisoned:
                record(
                    _quarantined_measurement(
                        domain, condition, threshold
                    ),
                    _quarantined_trace(domain, condition, threshold)
                    if config.trace else None,
                    checkpoint.issue_lease(condition, domain),
                )
        pending = [d for d in pending if d not in poisoned]

    if config.workers > 1 and pending:
        _crawl_condition_parallel(
            web, registry, config, condition, pending, record,
            stats or _CrawlStats(), checkpoint, drain=drain,
            pump=pump,
        )
    else:
        crawler = _build_crawler(web, registry, config, condition)
        for domain in pending:
            if drain is not None and drain.requested:
                break  # drain: the in-flight site already finished
            epoch = (
                checkpoint.issue_lease(condition, domain)
                if checkpoint is not None else None
            )
            measurement, trace, wire = _measure_site(
                crawler, registry, config, condition, domain,
                lease_epoch=epoch,
            )
            record(measurement, trace, epoch, wire)
    # Canonical domain order: resumed, parallel and serial runs must
    # serialize identically, so insertion order never leaks in.
    if drain is not None and drain.requested:
        # Partial by design — run_survey raises SurveyInterrupted
        # before this dict could ever reach the analysis layer.
        return {d: by_domain[d] for d in domains if d in by_domain}
    return {d: by_domain[d] for d in domains}


def run_survey(
    web: SyntheticWeb,
    registry: FeatureRegistry,
    config: Optional[SurveyConfig] = None,
    progress: Optional[ProgressCallback] = None,
    run_dir: Optional[str] = None,
    resume: bool = False,
) -> SurveyResult:
    """Crawl the web under every condition and collect the result.

    With ``run_dir``, every finished site-measurement is durably
    checkpointed there before the crawl moves on, and the finished
    survey is saved alongside the shards as ``survey.json``.  With
    ``resume`` (see :func:`resume_survey`), a directory holding a
    compatible interrupted run is picked back up where it stopped.
    """
    config = config or SurveyConfig()
    # Durations come from the monotonic clock (an NTP step mid-crawl
    # must not corrupt wall_seconds); the one wall-clock read below is
    # the human-readable start stamp recorded in the run manifest.
    started = time.perf_counter()
    started_at = time.time()

    ranked = web.ranking.all()
    if config.max_sites is not None:
        ranked = ranked[: config.max_sites]
    domains = [r.domain for r in ranked]

    checkpoint = None
    lock: Optional[RunLock] = None
    if run_dir is not None:
        # Local import: checkpoint -> persistence -> survey.
        from repro.core.checkpoint import (
            STATUS_INTERRUPTED,
            SurveyCheckpoint,
        )

        # Advisory lock first: two crawls interleaving appends into the
        # same shards would corrupt both runs' ordering guarantees.  A
        # second live process raises RunLockError (CLI exit 2); a stale
        # lock from a dead pid is reclaimed silently.
        lock = RunLock.acquire(run_dir)
        try:
            checkpoint = SurveyCheckpoint.attach(
                run_dir, registry, config, domains, resume=resume,
                started_at=started_at, storage=config.storage,
            )
        except BaseException:
            lock.release()
            raise

    previous_tracer = obs.current_tracer()
    metrics_installed = False
    previous_registry: Optional[runmetrics.MetricsRegistry] = None
    pump: Optional[_MetricsPump] = None
    guard = _DrainGuard()
    try:
        with guard:
            stats = _CrawlStats()
            if config.metrics and checkpoint is not None:
                # The run-wide registry lives in the parent.  Stable
                # series are rehydrated from the durable shards (not
                # carried over in memory), so a resumed run's totals
                # are a pure function of the recorded site set —
                # bit-identical to an uninterrupted run's.
                metrics_registry = runmetrics.MetricsRegistry()
                previous_registry = runmetrics.set_registry(
                    metrics_registry
                )
                metrics_installed = True
                for condition in config.conditions:
                    recovered = checkpoint.done(condition)
                    if not recovered:
                        continue
                    siblings = checkpoint.site_metrics(condition)
                    for domain, measurement in recovered.items():
                        metrics_registry.ingest_site(
                            condition, measurement,
                            siblings.get(domain),
                        )
                pump = _MetricsPump(
                    metrics_registry, checkpoint,
                    total=len(domains) * len(config.conditions),
                    interval=config.metrics_interval,
                )
            # Parse the high-reuse script bodies once, up front: the
            # serial crawl (and every fork-started worker, via
            # copy-on-write) runs against a hot cache from its first
            # page load.
            _prewarm_compile_cache(
                web, domains, lower=config.engine == "compiled"
            )
            # The tracer goes in after the prewarm (warm-up parses are
            # not crawl work) and comes out in the finally below, so a
            # crawl never leaks tracing state into the caller's
            # process.
            if config.trace:
                obs.set_tracer(obs.Tracer())
            if (config.max_worker_rss_mb is not None
                    and config.workers <= 1):
                # Serial crawls are governed in-process: pressure still
                # degrades each site gracefully, but with no supervisor
                # to recycle the process the high-water mark persists —
                # every remaining site then records the cause honestly.
                set_memory_governor(
                    MemoryGovernor(config.max_worker_rss_mb)
                )
            measurements: Dict[str, Dict[str, SiteMeasurement]] = {}
            for condition in config.conditions:
                measurements[condition] = _crawl_condition(
                    web, registry, config, condition, domains,
                    progress, checkpoint, stats, drain=guard,
                    pump=pump,
                )
                if guard.requested:
                    break
        if guard.requested:
            # Every in-flight visit has finished or been dropped, every
            # shard append is already fsynced; stamp the manifest so
            # operators (and fsck) can tell a drained run from a crash.
            if pump is not None:
                pump.final()
            if checkpoint is not None:
                checkpoint.mark_status(STATUS_INTERRUPTED)
            raise SurveyInterrupted(
                "crawl interrupted by signal %s — drained cleanly%s"
                % (guard.signum,
                   "; rerun with --resume to continue"
                   if run_dir is not None else ""),
                run_dir=run_dir,
            )

        manual_only = {
            site.domain: list(site.plan.manual_only)
            for site in web.sites.values()
            if site.plan.manual_only and site.domain in set(domains)
        }
        weights = {
            domain: web.ranking.visit_weight(domain)
            for domain in domains
        }
        if pump is not None:
            pump.final()
        stats.finish()
        result = SurveyResult(
            conditions=tuple(config.conditions),
            visits_per_site=config.visits_per_site,
            domains=domains,
            measurements=measurements,
            visit_weights=weights,
            manual_only=manual_only,
            registry=registry,
            wall_seconds=time.perf_counter() - started,
            compile_cache=stats.cache,
            phase_seconds=stats.phases,
            process_faults=stats.proc_faults(),
        )
        if checkpoint is not None:
            checkpoint.write_result(result)
        return result
    except StorageError:
        # The durability layer exhausted its retries (ENOSPC, EIO, ...).
        # Everything already checkpointed is fsynced and parseable —
        # the failed write was rolled back to a record boundary — so
        # stamp the run interrupted (best-effort; the same storage may
        # refuse) and surface the typed, resumable error.
        if checkpoint is not None:
            try:
                checkpoint.mark_status(STATUS_INTERRUPTED)
            except OSError:
                pass
        raise
    finally:
        if config.trace:
            obs.set_tracer(previous_tracer)
        if metrics_installed:
            runmetrics.set_registry(previous_registry)
        if config.max_worker_rss_mb is not None:
            set_memory_governor(None)
        if checkpoint is not None:
            checkpoint.close()
        if lock is not None:
            lock.release()


def resume_survey(
    web: SyntheticWeb,
    registry: FeatureRegistry,
    run_dir: str,
    config: Optional[SurveyConfig] = None,
    progress: Optional[ProgressCallback] = None,
) -> SurveyResult:
    """Resume (or start) a checkpointed survey in ``run_dir``.

    Validates that the directory's manifest matches the live registry
    fingerprint and crawl configuration (raising
    :class:`~repro.core.checkpoint.CheckpointError` on any mismatch),
    skips every (condition, domain) pair already on disk, and crawls
    the rest.  The returned result is bit-identical to an
    uninterrupted run of the same configuration.
    """
    return run_survey(
        web, registry, config=config, progress=progress,
        run_dir=run_dir, resume=True,
    )

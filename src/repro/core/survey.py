"""Survey orchestration: the full automated crawl (section 4.3.3).

``run_survey`` visits every ranked site under every requested browsing
condition, five rounds each, through the instrumented browser, and
returns a :class:`SurveyResult` the analysis layer consumes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.blocking.extension import BrowsingCondition
from repro.blocking.lists import builtin_filter_list, builtin_tracker_database
from repro.browser.browser import Browser, BrowserConfig
from repro.browser.session import SiteMeasurement
from repro.monkey.crawler import CrawlConfig, SiteCrawler
from repro.net.fetcher import Fetcher
from repro.webgen.sitegen import SyntheticWeb
from repro.webidl.registry import FeatureRegistry

ProgressCallback = Callable[[str, int, int], None]


@dataclass
class SurveyConfig:
    """What to crawl and how."""

    #: browsing conditions to run (paper: default + blocking; add the
    #: single-extension conditions for the Figure 7 analysis)
    conditions: Tuple[str, ...] = (
        BrowsingCondition.DEFAULT,
        BrowsingCondition.BLOCKING,
    )
    #: visit rounds per site per condition (the paper uses five)
    visits_per_site: int = 5
    #: master seed for the crawl's randomness
    seed: int = 606
    crawl: CrawlConfig = field(default_factory=CrawlConfig)
    browser: BrowserConfig = field(default_factory=BrowserConfig)
    #: crawl only the first N ranked sites (None = all)
    max_sites: Optional[int] = None
    #: parallel crawl workers (1 = in-process).  Per-site randomness is
    #: derived from (seed, domain, round), so worker count and schedule
    #: cannot change the measurements — parallel and serial runs are
    #: bit-identical.
    workers: int = 1


@dataclass
class SurveyResult:
    """Everything the crawl measured, ready for analysis."""

    conditions: Tuple[str, ...]
    visits_per_site: int
    domains: List[str]
    #: condition -> domain -> measurement
    measurements: Dict[str, Dict[str, SiteMeasurement]]
    #: traffic weight per domain (Figure 5)
    visit_weights: Dict[str, float]
    #: ground truth for the external validation (Figure 9)
    manual_only: Dict[str, List[str]]
    registry: FeatureRegistry
    wall_seconds: float = 0.0

    # -- views -----------------------------------------------------------

    def measurement(self, condition: str, domain: str) -> SiteMeasurement:
        return self.measurements[condition][domain]

    def measured_domains(self, condition: str) -> List[str]:
        return [
            d for d in self.domains
            if self.measurements[condition][d].measured
        ]

    def failed_domains(self, condition: str) -> List[str]:
        return [
            d for d in self.domains
            if not self.measurements[condition][d].measured
        ]

    def commonly_measured_domains(self) -> List[str]:
        """Domains measured under every condition (block-rate joins)."""
        out = []
        for domain in self.domains:
            if all(
                self.measurements[c][domain].measured
                for c in self.conditions
            ):
                out.append(domain)
        return out

    def feature_sites(self, condition: str) -> Dict[str, Set[str]]:
        """feature name -> set of domains using it."""
        index: Dict[str, Set[str]] = {}
        for domain in self.measured_domains(condition):
            for feature in self.measurements[condition][domain].features:
                index.setdefault(feature, set()).add(domain)
        return index

    def standard_sites(self, condition: str) -> Dict[str, Set[str]]:
        """standard abbrev -> set of domains using it."""
        index: Dict[str, Set[str]] = {
            s.abbrev: set() for s in self.registry.standards()
        }
        for domain in self.measured_domains(condition):
            measurement = self.measurements[condition][domain]
            for abbrev in measurement.standards_used():
                index[abbrev].add(domain)
        return index

    def total_pages_visited(self) -> int:
        return sum(
            m.pages
            for by_domain in self.measurements.values()
            for m in by_domain.values()
        )

    def total_invocations(self) -> int:
        return sum(
            m.invocations
            for by_domain in self.measurements.values()
            for m in by_domain.values()
        )


def _build_crawler(
    web: SyntheticWeb,
    registry: FeatureRegistry,
    config: SurveyConfig,
    condition: str,
) -> SiteCrawler:
    extensions = BrowsingCondition.extensions_for(
        condition,
        filter_list=builtin_filter_list(web.ecosystem),
        tracker_db=builtin_tracker_database(web.ecosystem),
    )
    browser = Browser(
        registry,
        Fetcher(web),
        blocking_extensions=extensions,
        config=config.browser,
    )
    return SiteCrawler(browser, config.crawl, condition=condition)


def _measure_site(
    crawler: SiteCrawler,
    registry: FeatureRegistry,
    config: SurveyConfig,
    condition: str,
    domain: str,
) -> SiteMeasurement:
    measurement = SiteMeasurement(domain=domain, condition=condition)
    for round_index in range(1, config.visits_per_site + 1):
        result = crawler.visit_site(domain, round_index, seed=config.seed)
        measurement.add_round(result, registry)
    return measurement


# Worker-process state for the parallel crawl.  The parent stashes the
# shared inputs in _parent_args before forking; children inherit the
# memory image, so nothing is pickled (webs can be hundreds of MB).
_parent_args: Dict[str, object] = {}
_worker_state: Dict[str, object] = {}


def _parallel_worker_init() -> None:
    web = _parent_args["web"]
    registry = _parent_args["registry"]
    config = _parent_args["config"]
    condition = _parent_args["condition"]
    _worker_state["crawler"] = _build_crawler(
        web, registry, config, condition
    )
    _worker_state["registry"] = registry
    _worker_state["config"] = config
    _worker_state["condition"] = condition


def _parallel_measure(domain: str) -> SiteMeasurement:
    return _measure_site(
        _worker_state["crawler"],
        _worker_state["registry"],
        _worker_state["config"],
        _worker_state["condition"],
        domain,
    )


def _crawl_condition_parallel(
    web: SyntheticWeb,
    registry: FeatureRegistry,
    config: SurveyConfig,
    condition: str,
    domains: List[str],
    progress: Optional[ProgressCallback],
) -> Dict[str, SiteMeasurement]:
    import multiprocessing

    context = multiprocessing.get_context("fork")
    _parent_args.update(
        web=web, registry=registry, config=config, condition=condition
    )
    by_domain: Dict[str, SiteMeasurement] = {}
    with context.Pool(
        processes=config.workers,
        initializer=_parallel_worker_init,
    ) as pool:
        for index, measurement in enumerate(
            pool.imap(_parallel_measure, domains, chunksize=8)
        ):
            by_domain[measurement.domain] = measurement
            if progress is not None and (index + 1) % 50 == 0:
                progress(condition, index + 1, len(domains))
    return by_domain


def run_survey(
    web: SyntheticWeb,
    registry: FeatureRegistry,
    config: Optional[SurveyConfig] = None,
    progress: Optional[ProgressCallback] = None,
) -> SurveyResult:
    """Crawl the web under every condition and collect the result."""
    config = config or SurveyConfig()
    started = time.time()

    ranked = web.ranking.all()
    if config.max_sites is not None:
        ranked = ranked[: config.max_sites]
    domains = [r.domain for r in ranked]

    measurements: Dict[str, Dict[str, SiteMeasurement]] = {}
    for condition in config.conditions:
        if config.workers > 1:
            measurements[condition] = _crawl_condition_parallel(
                web, registry, config, condition, domains, progress
            )
            continue
        crawler = _build_crawler(web, registry, config, condition)
        by_domain: Dict[str, SiteMeasurement] = {}
        for index, domain in enumerate(domains):
            by_domain[domain] = _measure_site(
                crawler, registry, config, condition, domain
            )
            if progress is not None and (index + 1) % 50 == 0:
                progress(condition, index + 1, len(domains))
        measurements[condition] = by_domain

    manual_only = {
        site.domain: list(site.plan.manual_only)
        for site in web.sites.values()
        if site.plan.manual_only and site.domain in set(domains)
    }
    weights = {
        domain: web.ranking.visit_weight(domain) for domain in domains
    }
    return SurveyResult(
        conditions=tuple(config.conditions),
        visits_per_site=config.visits_per_site,
        domains=domains,
        measurements=measurements,
        visit_weights=weights,
        manual_only=manual_only,
        registry=registry,
        wall_seconds=time.time() - started,
    )

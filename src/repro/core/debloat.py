"""Browser debloating: turning the measurements into a feature policy.

Section 7.2 of the paper observes that shipping hundreds of never-used
features "seems to contradict the common security principle of least
privilege", and section 7.3 calls for "a more complete treatment of the
security implications of these broad APIs".  Follow-up work (browser
debloating) did exactly that: use feature-usage measurements to decide
which Web APIs a hardened browser profile can disable, and at what
compatibility cost.

This module is that treatment, built on the survey:

* :func:`usage_threshold_policy` — disable every standard used by less
  than a popularity threshold;
* :func:`cve_weighted_policy` — greedily disable the standards with the
  best CVEs-avoided per site-broken ratio;
* :func:`evaluate_policy` — measure any policy's cost/benefit against
  the crawl: features removed, CVEs avoided, sites affected (a site is
  *affected* if it used at least one disabled standard; *broken-by-N*
  if it used at least N).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.blocking.extension import BrowsingCondition
from repro.core import metrics
from repro.core.survey import SurveyResult
from repro.standards.cves import CveRecord, build_cve_corpus, cves_by_standard


@dataclass(frozen=True)
class DebloatPolicy:
    """A set of standards a hardened profile disables."""

    name: str
    disabled: FrozenSet[str]

    def disables(self, abbrev: str) -> bool:
        return abbrev in self.disabled


@dataclass(frozen=True)
class PolicyEvaluation:
    """Cost/benefit of a policy against a measured crawl."""

    policy: DebloatPolicy
    features_removed: int
    total_features: int
    cves_avoided: int
    total_mapped_cves: int
    sites_affected: int
    sites_measured: int
    #: affected site -> how many of its used standards were disabled
    affected_breakdown: Dict[str, int]

    @property
    def feature_reduction(self) -> float:
        return self.features_removed / max(1, self.total_features)

    @property
    def cve_reduction(self) -> float:
        return self.cves_avoided / max(1, self.total_mapped_cves)

    @property
    def site_breakage(self) -> float:
        return self.sites_affected / max(1, self.sites_measured)


def usage_threshold_policy(
    result: SurveyResult,
    threshold: float = 0.01,
    condition: str = BrowsingCondition.DEFAULT,
    name: Optional[str] = None,
) -> DebloatPolicy:
    """Disable every standard used by < ``threshold`` of sites.

    ``threshold=0.01`` encodes the paper's repeated "<1% of sites"
    boundary; with the paper's numbers it disables 28 standards.
    """
    popularity = metrics.standard_popularity(result, condition)
    disabled = frozenset(
        abbrev for abbrev, fraction in popularity.items()
        if fraction < threshold
    )
    return DebloatPolicy(
        name=name or ("usage<%.2g" % threshold), disabled=disabled
    )


def blocked_anyway_policy(
    result: SurveyResult,
    block_threshold: float = 0.75,
    name: Optional[str] = None,
) -> DebloatPolicy:
    """Disable standards that blocking-extension users already lose.

    The paper's circumstantial-evidence argument (section 7.2): if a
    standard is prevented from executing more than ``block_threshold``
    of the time by content blockers, its functionality is evidently not
    "necessary to the millions of people who use content blocking
    extensions" — a hardened profile can disable it outright.
    """
    rates = metrics.standard_block_rates(result)
    disabled = frozenset(
        abbrev for abbrev, rate in rates.items()
        if rate is not None and rate >= block_threshold
    )
    return DebloatPolicy(
        name=name or ("blocked>=%d%%" % round(block_threshold * 100)),
        disabled=disabled,
    )


def cve_weighted_policy(
    result: SurveyResult,
    max_breakage: float = 0.05,
    condition: str = BrowsingCondition.DEFAULT,
    cve_corpus: Optional[List[CveRecord]] = None,
    name: Optional[str] = None,
) -> DebloatPolicy:
    """Greedy CVE-per-breakage knapsack under a breakage budget.

    Repeatedly disables the standard with the highest
    ``CVEs avoided / additional sites affected`` ratio until disabling
    anything more would push the affected-site fraction past
    ``max_breakage``.  Zero-cost standards (used by no measured site)
    are always taken, whatever their CVE count — free attack surface.
    """
    corpus = cve_corpus if cve_corpus is not None else build_cve_corpus()
    cves = cves_by_standard(corpus)
    standard_sites = result.standard_sites(condition)
    measured = result.measured_domains(condition)
    budget = int(max_breakage * len(measured))

    disabled: Set[str] = set()
    affected: Set[str] = set()
    # Free wins first.
    for abbrev, sites in standard_sites.items():
        if not sites:
            disabled.add(abbrev)

    while True:
        best: Optional[Tuple[float, str, Set[str]]] = None
        for abbrev, sites in standard_sites.items():
            if abbrev in disabled:
                continue
            extra = set(sites) - affected
            if len(affected) + len(extra) > budget:
                continue
            gain = cves.get(abbrev, 0)
            if gain == 0:
                continue
            ratio = gain / (len(extra) + 1.0)
            candidate = (ratio, abbrev, extra)
            if best is None or candidate[0] > best[0]:
                best = candidate
        if best is None:
            break
        _, abbrev, extra = best
        disabled.add(abbrev)
        affected |= extra
    return DebloatPolicy(
        name=name or ("cve-greedy<=%d%%" % round(max_breakage * 100)),
        disabled=frozenset(disabled),
    )


def evaluate_policy(
    result: SurveyResult,
    policy: DebloatPolicy,
    condition: str = BrowsingCondition.DEFAULT,
    cve_corpus: Optional[List[CveRecord]] = None,
) -> PolicyEvaluation:
    """Measure a policy's cost and benefit against the crawl."""
    registry = result.registry
    corpus = cve_corpus if cve_corpus is not None else build_cve_corpus()
    cves = cves_by_standard(corpus)

    features_removed = sum(
        len(registry.features_of_standard(abbrev))
        for abbrev in policy.disabled
    )
    cves_avoided = sum(cves.get(abbrev, 0) for abbrev in policy.disabled)

    affected_breakdown: Dict[str, int] = {}
    measured = result.measured_domains(condition)
    for domain in measured:
        used = result.measurement(condition, domain).standards_used()
        hit = len(used & policy.disabled)
        if hit:
            affected_breakdown[domain] = hit

    return PolicyEvaluation(
        policy=policy,
        features_removed=features_removed,
        total_features=registry.feature_count(),
        cves_avoided=cves_avoided,
        total_mapped_cves=sum(cves.values()),
        sites_affected=len(affected_breakdown),
        sites_measured=len(measured),
        affected_breakdown=affected_breakdown,
    )


def render_evaluation(evaluation: PolicyEvaluation) -> str:
    """A one-screen report for a policy evaluation."""
    lines = [
        "Policy: %s" % evaluation.policy.name,
        "  standards disabled:  %d" % len(evaluation.policy.disabled),
        "  features removed:    %d of %d (%.1f%%)"
        % (
            evaluation.features_removed,
            evaluation.total_features,
            100 * evaluation.feature_reduction,
        ),
        "  CVEs avoided:        %d of %d (%.1f%%)"
        % (
            evaluation.cves_avoided,
            evaluation.total_mapped_cves,
            100 * evaluation.cve_reduction,
        ),
        "  sites affected:      %d of %d (%.1f%%)"
        % (
            evaluation.sites_affected,
            evaluation.sites_measured,
            100 * evaluation.site_breakage,
        ),
    ]
    return "\n".join(lines)

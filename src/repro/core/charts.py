"""SVG renderings of the paper's figures.

Static, dependency-free SVG output for each figure the analyses
regenerate.  Design decisions follow a fixed procedure (form → color by
job → validated palette → mark specs → labels):

* one axis per panel, never dual scales;
* single-series charts use the sequential blue; the only multi-series
  chart (Figure 1's four browsers) uses the validated categorical
  order with a legend AND direct end-labels (two of the four slots sit
  below 3:1 contrast on the light surface, so labels are mandatory
  relief, not decoration);
* Figure 6's three block-rate bands are *ordered*, so they use an
  ordinal one-hue ramp (light→dark blue), not three unrelated hues;
* marks are thin: 2px lines, r≈4 dots, 2px gaps between columns;
  grid and axes are recessive grays; every mark carries an SVG
  ``<title>`` so hovering reveals the datum;
* text wears text tokens (primary/secondary ink), never series color.

The palette is the validated reference set (see the repo's design
notes): categorical #2a78d6 / #1baf7a / #eda100 / #008300 on the
#fcfcfb surface (worst adjacent CVD ΔE 24.2).
"""

from __future__ import annotations

import datetime
import math
from typing import Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from repro.core import analysis
from repro.core.survey import SurveyResult
from repro.core.validation import ExternalValidationOutcome

# ---------------------------------------------------------------------------
# Palette (validated; see module docstring)
# ---------------------------------------------------------------------------

SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID = "#e5e4e0"
AXIS = "#c9c8c3"
SERIES_BLUE = "#2a78d6"
CATEGORICAL = ["#2a78d6", "#1baf7a", "#eda100", "#008300"]
#: ordinal one-hue ramp for ordered classes (blue 250 / 450 / 650)
ORDINAL_BLUE = ["#86b6ef", "#2a78d6", "#104281"]

_FONT = "font-family='Helvetica, Arial, sans-serif'"


class SvgCanvas:
    """A minimal SVG document builder."""

    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height
        self._parts: List[str] = []

    def rect(self, x: float, y: float, w: float, h: float, fill: str,
             tooltip: str = "", rx: float = 0.0) -> None:
        inner = "<title>%s</title>" % escape(tooltip) if tooltip else ""
        self._parts.append(
            "<rect x='%.1f' y='%.1f' width='%.1f' height='%.1f' "
            "rx='%.1f' fill='%s'>%s</rect>" % (x, y, w, h, rx, fill, inner)
        )

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str, width: float = 1.0, dash: str = "") -> None:
        dash_attr = " stroke-dasharray='%s'" % dash if dash else ""
        self._parts.append(
            "<line x1='%.1f' y1='%.1f' x2='%.1f' y2='%.1f' stroke='%s' "
            "stroke-width='%.1f'%s/>" % (x1, y1, x2, y2, stroke, width,
                                         dash_attr)
        )

    def circle(self, cx: float, cy: float, r: float, fill: str,
               tooltip: str = "") -> None:
        inner = "<title>%s</title>" % escape(tooltip) if tooltip else ""
        self._parts.append(
            "<circle cx='%.1f' cy='%.1f' r='%.1f' fill='%s' "
            "stroke='%s' stroke-width='1'>%s</circle>"
            % (cx, cy, r, fill, SURFACE, inner)
        )

    def polyline(self, points: Sequence[Tuple[float, float]], stroke: str,
                 width: float = 2.0) -> None:
        coords = " ".join("%.1f,%.1f" % (x, y) for x, y in points)
        self._parts.append(
            "<polyline points='%s' fill='none' stroke='%s' "
            "stroke-width='%.1f' stroke-linejoin='round'/>"
            % (coords, stroke, width)
        )

    def text(self, x: float, y: float, content: str,
             size: int = 11, fill: str = TEXT_SECONDARY,
             anchor: str = "start", weight: str = "normal") -> None:
        self._parts.append(
            "<text x='%.1f' y='%.1f' font-size='%d' fill='%s' "
            "text-anchor='%s' font-weight='%s' %s>%s</text>"
            % (x, y, size, fill, anchor, weight, _FONT, escape(content))
        )

    def render(self) -> str:
        return (
            "<svg xmlns='http://www.w3.org/2000/svg' width='%d' "
            "height='%d' viewBox='0 0 %d %d'>"
            "<rect width='%d' height='%d' fill='%s'/>%s</svg>"
            % (self.width, self.height, self.width, self.height,
               self.width, self.height, SURFACE, "".join(self._parts))
        )


class LinearScale:
    """data domain -> pixel range."""

    def __init__(self, domain: Tuple[float, float],
                 pixels: Tuple[float, float]) -> None:
        self.d0, self.d1 = domain
        self.p0, self.p1 = pixels
        self._span = (self.d1 - self.d0) or 1.0

    def __call__(self, value: float) -> float:
        fraction = (value - self.d0) / self._span
        return self.p0 + fraction * (self.p1 - self.p0)

    def ticks(self, count: int = 5) -> List[float]:
        step = _nice_step(self._span / max(1, count))
        first = math.ceil(self.d0 / step) * step
        out = []
        value = first
        while value <= self.d1 + 1e-9:
            out.append(round(value, 10))
            value += step
        return out


class LogScale:
    """log10 scale for strictly positive data."""

    def __init__(self, domain: Tuple[float, float],
                 pixels: Tuple[float, float]) -> None:
        self.d0 = max(domain[0], 0.5)
        self.d1 = max(domain[1], self.d0 * 10)
        self.p0, self.p1 = pixels
        self._l0 = math.log10(self.d0)
        self._l1 = math.log10(self.d1)

    def __call__(self, value: float) -> float:
        value = max(value, self.d0)
        fraction = (math.log10(value) - self._l0) / (
            (self._l1 - self._l0) or 1.0
        )
        return self.p0 + fraction * (self.p1 - self.p0)

    def ticks(self) -> List[float]:
        decades = [
            10 ** e
            for e in range(int(math.floor(self._l0)),
                           int(math.ceil(self._l1)) + 1)
        ]
        # Only ticks inside the domain: an out-of-domain decade would
        # render beyond the plot area.
        return [t for t in decades if self.d0 * 0.999 <= t <= self.d1 * 1.001]


def _nice_step(raw: float) -> float:
    if raw <= 0:
        return 1.0
    magnitude = 10 ** math.floor(math.log10(raw))
    for multiplier in (1, 2, 5, 10):
        if raw <= multiplier * magnitude:
            return multiplier * magnitude
    return 10 * magnitude


_MARGIN = dict(left=62, right=24, top=40, bottom=44)


def _frame(canvas: SvgCanvas, title: str) -> Tuple[float, float, float,
                                                   float]:
    """Title + plot-area bounds (x0, y0, x1, y1)."""
    canvas.text(_MARGIN["left"], 22, title, size=13, fill=TEXT_PRIMARY,
                weight="bold")
    return (
        _MARGIN["left"],
        _MARGIN["top"],
        canvas.width - _MARGIN["right"],
        canvas.height - _MARGIN["bottom"],
    )


def _x_axis(canvas, scale, y, labeler=None, ticks=None):
    ticks = ticks if ticks is not None else scale.ticks()
    for value in ticks:
        x = scale(value)
        canvas.line(x, y, x, y + 4, AXIS)
        label = labeler(value) if labeler else _short(value)
        canvas.text(x, y + 16, label, anchor="middle")
    canvas.line(scale.p0, y, scale.p1, y, AXIS)


def _y_axis(canvas, scale, x0, x1, labeler=None, ticks=None):
    ticks = ticks if ticks is not None else scale.ticks()
    for value in ticks:
        y = scale(value)
        canvas.line(x0, y, x1, y, GRID)
        label = labeler(value) if labeler else _short(value)
        canvas.text(x0 - 6, y + 4, label, anchor="end")


def _short(value: float) -> str:
    if value >= 1_000_000:
        return "%gM" % (value / 1_000_000)
    if value >= 1000:
        return "%gk" % (value / 1000)
    if value == int(value):
        return str(int(value))
    return "%g" % value


def _percent(value: float) -> str:
    return "%d%%" % round(value * 100)


# ---------------------------------------------------------------------------
# Figure builders
# ---------------------------------------------------------------------------

class _LabelPlacer:
    """Greedy anti-collision placement for point labels.

    Keeps the boxes already drawn; a new label that overlaps one is
    nudged upward in 11px steps (a few attempts, then placed anyway —
    an imperfect label beats a missing one).
    """

    def __init__(self) -> None:
        self._boxes: List[Tuple[float, float, float, float]] = []

    def place(self, canvas: SvgCanvas, x: float, y: float, text: str,
              size: int = 9) -> None:
        width = 0.62 * size * len(text)
        height = size + 2.0
        for _ in range(6):
            box = (x, y - height, x + width, y)
            if not any(_overlaps(box, other) for other in self._boxes):
                break
            y -= 11.0
        self._boxes.append((x, y - height, x + width, y))
        canvas.text(x, y, text, size=size, fill=TEXT_PRIMARY)


def _overlaps(a: Tuple[float, float, float, float],
              b: Tuple[float, float, float, float]) -> bool:
    return not (a[2] < b[0] or b[2] < a[0] or a[3] < b[1] or b[3] < a[1])


def figure1_svg() -> str:
    """Standards available + browser MLoC over time (two panels)."""
    points = analysis.figure1_browser_evolution()
    canvas = SvgCanvas(680, 484)
    years = sorted({p.year for p in points})
    browsers = sorted({p.browser for p in points})  # fixed order
    colors = {b: CATEGORICAL[i] for i, b in enumerate(browsers)}

    # Panel 1: web standards available (single series -> one hue, no
    # legend box; the title names the series).
    x_scale = LinearScale((years[0], years[-1]), (62, 640))
    top_scale = LinearScale((0, 80), (200, 48))
    canvas.text(62, 22, "Figure 1 - feature families and browser size "
                        "over time", size=13, fill=TEXT_PRIMARY,
                weight="bold")
    canvas.text(62, 40, "Web standards available", size=11)
    _y_axis(canvas, top_scale, 62, 640)
    standards_series = [
        (x_scale(p.year), top_scale(p.web_standards))
        for p in points if p.browser == browsers[0]
    ]
    canvas.polyline(standards_series, SERIES_BLUE)
    for p in points:
        if p.browser != browsers[0]:
            continue
        canvas.circle(x_scale(p.year), top_scale(p.web_standards), 3.5,
                      SERIES_BLUE,
                      tooltip="%d: %d standards" % (p.year,
                                                    p.web_standards))

    # Panel 2: million lines of code, four browsers (categorical).
    low_scale = LinearScale((0, 18), (420, 260))
    canvas.text(62, 252, "Million lines of code", size=11)
    _y_axis(canvas, low_scale, 62, 640)
    for browser in browsers:
        series = sorted(
            (p for p in points if p.browser == browser),
            key=lambda p: p.year,
        )
        color = colors[browser]
        canvas.polyline(
            [(x_scale(p.year), low_scale(p.million_loc)) for p in series],
            color,
        )
        for p in series:
            canvas.circle(
                x_scale(p.year), low_scale(p.million_loc), 3.0, color,
                tooltip="%s %d: %.1f MLoC" % (browser, p.year,
                                              p.million_loc),
            )
        # Direct end-label: mandatory relief for the sub-3:1 slots.
        last = series[-1]
        canvas.text(
            x_scale(last.year) + 6, low_scale(last.million_loc) + 4,
            browser, fill=TEXT_PRIMARY, size=10,
        )
    _x_axis(canvas, x_scale, 424, labeler=lambda v: str(int(v)),
            ticks=[float(y) for y in years])
    # Legend (>=2 series: always present), clear of the axis labels.
    legend_x = 70.0
    for browser in browsers:
        canvas.rect(legend_x, 460, 10, 10, colors[browser], rx=2)
        canvas.text(legend_x + 14, 469, browser, size=10)
        legend_x += 14 + 7 * len(browser) + 18
    return canvas.render()


def figure3_svg(result: SurveyResult) -> str:
    """CDF of standard popularity (single-series step line)."""
    points = analysis.figure3_standard_popularity_cdf(result)
    canvas = SvgCanvas(640, 400)
    x0, y0, x1, y1 = _frame(
        canvas, "Figure 3 - cumulative distribution of standard popularity"
    )
    max_sites = max(sites for sites, _ in points) or 1
    x_scale = LinearScale((0, max_sites), (x0, x1))
    y_scale = LinearScale((0, 1), (y1, y0))
    _y_axis(canvas, y_scale, x0, x1, labeler=_percent,
            ticks=[0, 0.25, 0.5, 0.75, 1.0])
    _x_axis(canvas, x_scale, y1)
    canvas.text((x0 + x1) / 2, canvas.height - 8,
                "Sites using a standard", anchor="middle")
    steps: List[Tuple[float, float]] = []
    previous_fraction = 0.0
    for sites, fraction in points:
        steps.append((x_scale(sites), y_scale(previous_fraction)))
        steps.append((x_scale(sites), y_scale(fraction)))
        previous_fraction = fraction
    steps.append((x1, y_scale(1.0)))
    canvas.polyline(steps, SERIES_BLUE)
    return canvas.render()


_NOTABLE = frozenset(
    ["CSS-OM", "H-CM", "ALS", "E", "SVG", "BE", "PT2", "DOM1", "AJAX",
     "WCR", "TC"]
)


def figure4_svg(result: SurveyResult) -> str:
    """Popularity (log) vs block rate scatter."""
    points = analysis.figure4_popularity_vs_block_rate(result)
    canvas = SvgCanvas(640, 440)
    x0, y0, x1, y1 = _frame(
        canvas, "Figure 4 - standard popularity vs block rate"
    )
    max_sites = max(p.sites for p in points) or 10
    x_scale = LinearScale((0, 1), (x0, x1))
    y_scale = LogScale((1, max_sites), (y1, y0))
    _y_axis(canvas, y_scale, x0, x1, ticks=y_scale.ticks())
    _x_axis(canvas, x_scale, y1, labeler=_percent,
            ticks=[0, 0.25, 0.5, 0.75, 1.0])
    canvas.text((x0 + x1) / 2, canvas.height - 8, "Block rate",
                anchor="middle")
    canvas.text(16, (y0 + y1) / 2, "Sites", size=11)
    labels = _LabelPlacer()
    for p in points:
        rate = p.block_rate if p.block_rate is not None else 0.0
        x, y = x_scale(rate), y_scale(max(1, p.sites))
        canvas.circle(
            x, y, 4, SERIES_BLUE,
            tooltip="%s: %d sites, blocked %s"
            % (p.abbrev, p.sites, _percent(rate)),
        )
        if p.abbrev in _NOTABLE:
            labels.place(canvas, x + 6, y - 5, p.abbrev)
    return canvas.render()


def figure5_svg(result: SurveyResult) -> str:
    """Site fraction vs traffic-weighted fraction with x=y reference."""
    points = analysis.figure5_site_vs_traffic_popularity(result)
    canvas = SvgCanvas(560, 480)
    x0, y0, x1, y1 = _frame(
        canvas, "Figure 5 - sites vs traffic-weighted visits"
    )
    x_scale = LinearScale((0, 1), (x0, x1))
    y_scale = LinearScale((0, 1), (y1, y0))
    _y_axis(canvas, y_scale, x0, x1, labeler=_percent,
            ticks=[0, 0.25, 0.5, 0.75, 1.0])
    _x_axis(canvas, x_scale, y1, labeler=_percent,
            ticks=[0, 0.25, 0.5, 0.75, 1.0])
    canvas.text((x0 + x1) / 2, canvas.height - 8,
                "Portion of all websites", anchor="middle")
    canvas.line(x_scale(0), y_scale(0), x_scale(1), y_scale(1), AXIS,
                dash="4,4")
    labeled = {"DOM4", "DOM-PS", "H-HI", "TC"}
    labels = _LabelPlacer()
    for p in points:
        x = x_scale(p.site_fraction)
        y = y_scale(p.visit_fraction)
        canvas.circle(
            x, y, 4, SERIES_BLUE,
            tooltip="%s: %s of sites, %s of visits"
            % (p.abbrev, _percent(p.site_fraction),
               _percent(p.visit_fraction)),
        )
        if p.abbrev in labeled:
            labels.place(canvas, x + 6, y - 5, p.abbrev)
    return canvas.render()


def figure6_svg(result: SurveyResult) -> str:
    """Introduction date vs popularity, ordinal block-rate bands."""
    points = analysis.figure6_age_vs_popularity(result)
    canvas = SvgCanvas(680, 440)
    x0, y0, x1, y1 = _frame(
        canvas, "Figure 6 - standard introduction date vs popularity"
    )
    dates = [p.introduced.toordinal() for p in points]
    max_sites = max(p.sites for p in points) or 10
    x_scale = LinearScale((min(dates), max(dates)), (x0, x1))
    y_scale = LinearScale((0, max_sites * 1.05), (y1, y0))
    _y_axis(canvas, y_scale, x0, x1)
    year_ticks = [
        datetime.date(year, 1, 1).toordinal()
        for year in range(2005, 2017, 2)
        if min(dates) <= datetime.date(year, 1, 1).toordinal() <= max(dates)
    ]
    _x_axis(canvas, x_scale, y1,
            labeler=lambda v: str(
                datetime.date.fromordinal(int(v)).year),
            ticks=year_ticks)
    canvas.text((x0 + x1) / 2, canvas.height - 8,
                "Standard introduction date", anchor="middle")
    band_order = ["low", "mid", "high"]
    band_color = dict(zip(band_order, ORDINAL_BLUE))
    labels = _LabelPlacer()
    band_label = {
        "low": "block rate < 33%",
        "mid": "33% - 66%",
        "high": "> 66%",
    }
    for p in points:
        x = x_scale(p.introduced.toordinal())
        y = y_scale(p.sites)
        canvas.circle(
            x, y, 4, band_color[p.block_band],
            tooltip="%s (%s): %d sites, %s"
            % (p.abbrev, p.introduced.isoformat(), p.sites,
               band_label[p.block_band]),
        )
        if p.abbrev in ("AJAX", "H-P", "SLC", "V"):
            labels.place(canvas, x + 6, y - 5, p.abbrev)
    legend_x = x0 + 8.0
    for band in band_order:
        canvas.rect(legend_x, canvas.height - 28, 10, 10,
                    band_color[band], rx=2)
        canvas.text(legend_x + 14, canvas.height - 19,
                    band_label[band], size=10)
        legend_x += 14 + 6.2 * len(band_label[band]) + 18
    return canvas.render()


def figure7_svg(result: SurveyResult) -> str:
    """Ad-only vs tracking-only block rates with x=y reference."""
    points = analysis.figure7_ad_vs_tracking_block(result)
    canvas = SvgCanvas(560, 480)
    x0, y0, x1, y1 = _frame(
        canvas, "Figure 7 - ad-blocking vs tracking-blocking block rates"
    )
    x_scale = LinearScale((0, 1), (x0, x1))
    y_scale = LinearScale((0, 1), (y1, y0))
    _y_axis(canvas, y_scale, x0, x1, labeler=_percent,
            ticks=[0, 0.25, 0.5, 0.75, 1.0])
    _x_axis(canvas, x_scale, y1, labeler=_percent,
            ticks=[0, 0.25, 0.5, 0.75, 1.0])
    canvas.text((x0 + x1) / 2, canvas.height - 8, "Ad block rate",
                anchor="middle")
    canvas.line(x_scale(0), y_scale(0), x_scale(1), y_scale(1), AXIS,
                dash="4,4")
    labeled = {"PT2", "UIE", "WCR", "WRTC", "BE", "H-CM"}
    labels = _LabelPlacer()
    for p in points:
        if p.ad_block_rate is None or p.tracking_block_rate is None:
            continue
        x = x_scale(p.ad_block_rate)
        y = y_scale(p.tracking_block_rate)
        radius = 3 + min(3.0, math.log10(max(1, p.sites)))
        canvas.circle(
            x, y, radius, SERIES_BLUE,
            tooltip="%s: ad %s / tracking %s (%d sites)"
            % (p.abbrev, _percent(p.ad_block_rate),
               _percent(p.tracking_block_rate), p.sites),
        )
        if p.abbrev in labeled:
            labels.place(canvas, x + 7, y - 5, p.abbrev)
    return canvas.render()


def figure8_svg(result: SurveyResult) -> str:
    """Site-complexity PDF as a column chart."""
    pdf = analysis.figure8_site_complexity_pdf(result)
    canvas = SvgCanvas(640, 380)
    x0, y0, x1, y1 = _frame(
        canvas, "Figure 8 - number of standards used per site"
    )
    max_count = max(pdf) if pdf else 1
    peak = max(pdf.values()) if pdf else 1.0
    x_scale = LinearScale((-0.5, max_count + 0.5), (x0, x1))
    y_scale = LinearScale((0, peak * 1.1), (y1, y0))
    _y_axis(canvas, y_scale, x0, x1,
            labeler=lambda v: "%.0f%%" % (v * 100))
    _x_axis(canvas, x_scale, y1,
            ticks=[float(t) for t in range(0, max_count + 1, 5)])
    canvas.text((x0 + x1) / 2, canvas.height - 8,
                "Number of standards used", anchor="middle")
    slot = (x1 - x0) / (max_count + 1)
    bar = max(2.0, slot - 2.0)  # 2px surface gap between columns
    for count, fraction in pdf.items():
        x = x_scale(count) - bar / 2
        y = y_scale(fraction)
        canvas.rect(
            x, y, bar, y1 - y, SERIES_BLUE, rx=2,
            tooltip="%d standards: %.1f%% of sites"
            % (count, fraction * 100),
        )
    return canvas.render()


def figure9_svg(outcome: ExternalValidationOutcome) -> str:
    """Manual-vs-automated new-standards histogram."""
    canvas = SvgCanvas(560, 360)
    x0, y0, x1, y1 = _frame(
        canvas, "Figure 9 - new standards seen only in manual sessions"
    )
    histogram = outcome.histogram or {0: 0}
    categories = sorted(histogram)
    peak = max(histogram.values()) or 1
    slot = (x1 - x0) / max(1, len(categories))
    y_scale = LinearScale((0, peak * 1.15), (y1, y0))
    _y_axis(canvas, y_scale, x0, x1)
    canvas.text((x0 + x1) / 2, canvas.height - 8,
                "Number of new standards observed", anchor="middle")
    bar = max(4.0, slot * 0.7)
    for index, category in enumerate(categories):
        count = histogram[category]
        cx = x0 + slot * (index + 0.5)
        y = y_scale(count)
        canvas.rect(
            cx - bar / 2, y, bar, y1 - y, SERIES_BLUE, rx=2,
            tooltip="%d new standards on %d domains" % (category, count),
        )
        canvas.text(cx, y1 + 16, str(category), anchor="middle")
        canvas.text(cx, y - 5, str(count), anchor="middle", size=10,
                    fill=TEXT_PRIMARY)
    canvas.line(x0, y1, x1, y1, AXIS)
    return canvas.render()


def render_all(
    result: SurveyResult,
    out_dir: str,
    external: Optional[ExternalValidationOutcome] = None,
) -> Dict[str, str]:
    """Write every renderable figure to ``out_dir``; returns paths.

    Figure 7 is skipped unless the survey ran the single-extension
    conditions; Figure 9 is skipped without an external-validation
    outcome.
    """
    import os

    os.makedirs(out_dir, exist_ok=True)
    figures: Dict[str, str] = {
        "figure1": figure1_svg(),
        "figure3": figure3_svg(result),
        "figure4": figure4_svg(result),
        "figure5": figure5_svg(result),
        "figure6": figure6_svg(result),
        "figure8": figure8_svg(result),
    }
    try:
        figures["figure7"] = figure7_svg(result)
    except ValueError:
        pass
    if external is not None:
        figures["figure9"] = figure9_svg(external)
    paths: Dict[str, str] = {}
    for name, svg in figures.items():
        path = os.path.join(out_dir, "%s.svg" % name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(svg)
        paths[name] = path
    return paths

"""Saving and loading survey results.

A 10,000-site crawl takes hours; its analyses take milliseconds.  This
module serializes a :class:`~repro.core.survey.SurveyResult` to a JSON
document (and back) so a crawl can be measured once and analyzed many
times — or shipped alongside a paper the way measurement studies
publish their datasets.

The format is versioned and self-describing; loading validates the
feature names against the running registry so a result saved against a
different corpus fails loudly instead of mis-attributing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.browser.session import TELEMETRY_COUNTERS, SiteMeasurement
from repro.core.survey import SurveyResult
from repro.net.resilience import DegradedResource
from repro.webidl.registry import FeatureRegistry, default_registry

FORMAT_VERSION = 1


class PersistenceError(ValueError):
    """Unusable or incompatible serialized survey."""


def measurement_to_dict(m: SiteMeasurement) -> Dict[str, Any]:
    """A JSON-ready representation of one site-under-one-condition.

    The telemetry counters serialize through
    :meth:`SiteMeasurement.telemetry` — one canonical list of names
    shared with the reports and ``repro fsck`` — under exactly the
    same keys as always (digest-stable).
    """
    out = {
        "rounds_completed": m.rounds_completed,
        "rounds_ok": m.rounds_ok,
        "features": sorted(m.features),
        "standards_by_round": [
            sorted(s) for s in m.standards_by_round
        ],
        "invocations": m.invocations,
        "pages": m.pages,
        "failure_reason": m.failure_reason,
        "transient_failure": m.transient_failure,
        "attempts": m.attempts,
        "rounds_partial": m.rounds_partial,
        "budget_cause": m.budget_cause,
        "budget_overshoot": m.budget_overshoot,
        "degraded": [d.to_dict() for d in m.degraded],
        "rounds_degraded": m.rounds_degraded,
    }
    out.update(m.telemetry())
    return out


def measurement_from_dict(
    domain: str,
    condition: str,
    raw: Dict[str, Any],
    registry: FeatureRegistry,
) -> SiteMeasurement:
    """Rebuild one measurement; validates features against the registry.

    ``transient_failure``/``attempts`` (and the budget fields) default
    when absent so surveys saved before the checkpointed runner and
    the site-isolation budgets still load.
    """
    unknown = [f for f in raw["features"] if f not in registry]
    if unknown:
        raise PersistenceError(
            "unknown features in stored survey: %s" % unknown[:3]
        )
    m = SiteMeasurement(domain=domain, condition=condition)
    m.rounds_completed = raw["rounds_completed"]
    m.rounds_ok = raw["rounds_ok"]
    m.features = set(raw["features"])
    m.standards_by_round = [
        set(s) for s in raw["standards_by_round"]
    ]
    m.invocations = raw["invocations"]
    m.pages = raw["pages"]
    m.failure_reason = raw["failure_reason"]
    m.transient_failure = raw.get("transient_failure", False)
    m.attempts = raw.get("attempts", 1)
    m.rounds_partial = raw.get("rounds_partial", 0)
    m.budget_cause = raw.get("budget_cause")
    m.budget_overshoot = raw.get("budget_overshoot", 0.0)
    # The degraded-page fields default so pre-resilience surveys load.
    m.degraded = [
        DegradedResource.from_dict(d) for d in raw.get("degraded", [])
    ]
    m.rounds_degraded = raw.get("rounds_degraded", 0)
    # Telemetry counters round-trip by their canonical names.  The
    # first three predate the versioned format and are required; the
    # rest default so pre-resilience surveys load.
    for counter in TELEMETRY_COUNTERS:
        if counter in ("scripts_blocked", "requests_blocked",
                       "interaction_events"):
            setattr(m, counter, raw[counter])
        else:
            setattr(m, counter, raw.get(counter, 0))
    return m


def survey_to_dict(result: SurveyResult) -> Dict[str, Any]:
    """A JSON-ready representation of a survey result."""
    measurements: Dict[str, Dict[str, Any]] = {}
    for condition, by_domain in result.measurements.items():
        measurements[condition] = {
            domain: measurement_to_dict(m)
            for domain, m in by_domain.items()
        }
    return {
        "format_version": FORMAT_VERSION,
        "registry_fingerprint": registry_fingerprint(result.registry),
        "conditions": list(result.conditions),
        "visits_per_site": result.visits_per_site,
        "domains": list(result.domains),
        "visit_weights": dict(result.visit_weights),
        "manual_only": {
            domain: list(standards)
            for domain, standards in result.manual_only.items()
        },
        "wall_seconds": result.wall_seconds,
        "compile_cache": dict(result.compile_cache),
        "phase_seconds": dict(result.phase_seconds),
        "measurements": measurements,
    }


def survey_from_dict(
    data: Dict[str, Any], registry: Optional[FeatureRegistry] = None
) -> SurveyResult:
    """Rebuild a SurveyResult; validates format and registry identity."""
    registry = registry or default_registry()
    if data.get("format_version") != FORMAT_VERSION:
        raise PersistenceError(
            "unsupported format version %r" % data.get("format_version")
        )
    fingerprint = registry_fingerprint(registry)
    if data.get("registry_fingerprint") != fingerprint:
        raise PersistenceError(
            "survey was recorded against a different feature registry"
        )
    measurements: Dict[str, Dict[str, SiteMeasurement]] = {}
    for condition, by_domain in data["measurements"].items():
        measurements[condition] = {
            domain: measurement_from_dict(domain, condition, raw, registry)
            for domain, raw in by_domain.items()
        }
    return SurveyResult(
        conditions=tuple(data["conditions"]),
        visits_per_site=data["visits_per_site"],
        domains=list(data["domains"]),
        measurements=measurements,
        visit_weights=dict(data["visit_weights"]),
        manual_only={
            domain: list(standards)
            for domain, standards in data["manual_only"].items()
        },
        registry=registry,
        wall_seconds=data.get("wall_seconds", 0.0),
        compile_cache=dict(data.get("compile_cache", {})),
        phase_seconds=dict(data.get("phase_seconds", {})),
    )


def registry_fingerprint(registry: FeatureRegistry) -> str:
    """A stable identity for the feature surface a survey measured."""
    import hashlib

    hasher = hashlib.sha256()
    for feature in sorted(registry.features(), key=lambda f: f.name):
        hasher.update(feature.name.encode("utf-8"))
        hasher.update(b"\x1f")
        hasher.update(feature.standard.encode("utf-8"))
        hasher.update(b"\x1e")
    return hasher.hexdigest()[:16]


def survey_digest(result: SurveyResult) -> str:
    """A content hash of everything a survey *measured*.

    Two runs are bit-identical when their digests match.  Wall-clock
    time is excluded (it differs run to run); key order is
    canonicalized, so dict insertion order cannot leak in.  The
    equivalence tests use this to assert that worker count, retries
    and checkpoint/resume never change what was measured.
    """
    import hashlib

    data = survey_to_dict(result)
    # Timings and cache counters vary run to run without changing what
    # was *measured* — they are excluded like wall_seconds.
    data.pop("wall_seconds", None)
    data.pop("compile_cache", None)
    data.pop("phase_seconds", None)
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def save_survey(result: SurveyResult, path: str) -> None:
    """Write a survey result to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(survey_to_dict(result), handle, indent=None,
                  separators=(",", ":"))


def load_survey(
    path: str, registry: Optional[FeatureRegistry] = None
) -> SurveyResult:
    """Read a survey result back from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise PersistenceError("not a survey file: %s" % error)
    return survey_from_dict(data, registry=registry)

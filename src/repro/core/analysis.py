"""One function per table and figure of the paper's evaluation.

Each function consumes a :class:`~repro.core.survey.SurveyResult` (plus
the static data sources where the paper does) and returns plain data
structures; :mod:`repro.core.reporting` renders them.  Figure and table
numbers follow the paper.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.blocking.extension import BrowsingCondition
from repro.core import metrics
from repro.core.survey import SurveyResult
from repro.standards import history
from repro.standards.cves import CveRecord, build_cve_corpus, cves_by_standard

#: Seconds of interaction per page visit (the paper's 30-second dwell).
INTERACTION_SECONDS_PER_PAGE = 30


# ---------------------------------------------------------------------------
# Figure 1 — standards available and browser LoC over time
# ---------------------------------------------------------------------------

def figure1_browser_evolution() -> List[history.BrowserEvolutionPoint]:
    """Feature families and lines of code in popular browsers over time."""
    return history.browser_evolution_series()


# ---------------------------------------------------------------------------
# Table 1 — crawl summary
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CrawlSummary:
    domains_measured: int
    domains_failed: int
    pages_visited: int
    interaction_seconds: int
    feature_invocations: int
    #: measured domains that lost at least one resource (a subset of
    #: ``domains_measured``, disjoint from ``domains_failed``: their
    #: numbers are real but lower bounds)
    domains_degraded: int = 0

    @property
    def interaction_days(self) -> float:
        return self.interaction_seconds / 86_400.0


def table1_crawl_summary(result: SurveyResult) -> CrawlSummary:
    """The Table 1 aggregates for this crawl."""
    default = BrowsingCondition.DEFAULT
    measured = len(result.measured_domains(default))
    failed = len(result.domains) - measured
    pages = result.total_pages_visited()
    return CrawlSummary(
        domains_measured=measured,
        domains_failed=failed,
        pages_visited=pages,
        interaction_seconds=pages * INTERACTION_SECONDS_PER_PAGE,
        feature_invocations=result.total_invocations(),
        domains_degraded=len(result.degraded_domains(default)),
    )


# ---------------------------------------------------------------------------
# Figure 3 — cumulative distribution of standard popularity
# ---------------------------------------------------------------------------

def figure3_standard_popularity_cdf(
    result: SurveyResult, condition: str = BrowsingCondition.DEFAULT
) -> List[Tuple[int, float]]:
    """(sites using a standard, portion of standards at or below)."""
    counts = sorted(metrics.standard_site_counts(result, condition).values())
    total = len(counts)
    return [
        (count, (index + 1) / total) for index, count in enumerate(counts)
    ]


# ---------------------------------------------------------------------------
# Figure 4 — standard popularity vs block rate
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StandardPoint:
    abbrev: str
    sites: int
    block_rate: Optional[float]


def figure4_popularity_vs_block_rate(
    result: SurveyResult,
) -> List[StandardPoint]:
    """One point per standard used by at least one site."""
    counts = metrics.standard_site_counts(
        result, BrowsingCondition.DEFAULT
    )
    rates = metrics.standard_block_rates(result)
    points = []
    for abbrev, sites in sorted(counts.items()):
        if sites == 0:
            continue
        points.append(
            StandardPoint(abbrev=abbrev, sites=sites,
                          block_rate=rates.get(abbrev))
        )
    return points


# ---------------------------------------------------------------------------
# Figure 5 — site popularity vs traffic-weighted popularity
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TrafficPoint:
    abbrev: str
    site_fraction: float
    visit_fraction: float

    @property
    def skew(self) -> float:
        """>0: more popular on high-traffic sites."""
        return self.visit_fraction - self.site_fraction


def figure5_site_vs_traffic_popularity(
    result: SurveyResult, condition: str = BrowsingCondition.DEFAULT
) -> List[TrafficPoint]:
    by_sites = metrics.standard_popularity(result, condition)
    by_visits = metrics.traffic_weighted_standard_popularity(
        result, condition
    )
    return [
        TrafficPoint(abbrev, by_sites[abbrev], by_visits[abbrev])
        for abbrev in sorted(by_sites)
        if by_sites[abbrev] > 0
    ]


# ---------------------------------------------------------------------------
# Figure 6 — standard introduction date vs popularity
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AgePoint:
    abbrev: str
    introduced: datetime.date
    sites: int
    block_band: str  # "low" (<33%), "mid" (33-66%), "high" (>66%)


def figure6_age_vs_popularity(
    result: SurveyResult,
    implementation_history: Optional[history.ImplementationHistory] = None,
) -> List[AgePoint]:
    """Implementation date (most-popular-feature rule) vs popularity."""
    registry = result.registry
    if implementation_history is None:
        names = {
            spec.abbrev: [
                f.name for f in registry.features_of_standard(spec.abbrev)
            ]
            for spec in registry.standards()
        }
        implementation_history = history.ImplementationHistory(names)
    feature_counts = metrics.feature_site_counts(
        result, BrowsingCondition.DEFAULT
    )
    standard_counts = metrics.standard_site_counts(
        result, BrowsingCondition.DEFAULT
    )
    rates = metrics.standard_block_rates(result)
    points: List[AgePoint] = []
    for spec in registry.standards():
        names = [f.name for f in registry.features_of_standard(spec.abbrev)]
        date = implementation_history.standard_implementation_date(
            spec, names, popularity=feature_counts
        )
        rate = rates.get(spec.abbrev)
        if rate is None:
            band = "low"
        elif rate < 0.33:
            band = "low"
        elif rate <= 0.66:
            band = "mid"
        else:
            band = "high"
        points.append(
            AgePoint(
                abbrev=spec.abbrev,
                introduced=date,
                sites=standard_counts[spec.abbrev],
                block_band=band,
            )
        )
    return points


# ---------------------------------------------------------------------------
# Figure 7 — ad-blocking vs tracking-blocking block rates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ConditionBlockPoint:
    abbrev: str
    sites: int
    ad_block_rate: Optional[float]
    tracking_block_rate: Optional[float]


def figure7_ad_vs_tracking_block(
    result: SurveyResult,
) -> List[ConditionBlockPoint]:
    """Per-standard block rate under each extension alone.

    Requires the survey to have run the ``abp-only`` and
    ``ghostery-only`` conditions.
    """
    for needed in (BrowsingCondition.ABP_ONLY,
                   BrowsingCondition.GHOSTERY_ONLY):
        if needed not in result.conditions:
            raise ValueError(
                "survey lacks condition %r (configure SurveyConfig."
                "conditions with all four conditions)" % needed
            )
    counts = metrics.standard_site_counts(result, BrowsingCondition.DEFAULT)
    ad_rates = metrics.standard_block_rates(
        result, blocking_condition=BrowsingCondition.ABP_ONLY
    )
    tracking_rates = metrics.standard_block_rates(
        result, blocking_condition=BrowsingCondition.GHOSTERY_ONLY
    )
    return [
        ConditionBlockPoint(
            abbrev=abbrev,
            sites=counts[abbrev],
            ad_block_rate=ad_rates.get(abbrev),
            tracking_block_rate=tracking_rates.get(abbrev),
        )
        for abbrev in sorted(counts)
        if counts[abbrev] > 0
    ]


# ---------------------------------------------------------------------------
# Table 2 — per-standard summary
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table2Row:
    name: str
    abbrev: str
    features: int
    sites: int
    block_rate: Optional[float]
    cves: int


def table2_standard_summary(
    result: SurveyResult,
    cve_corpus: Optional[List[CveRecord]] = None,
) -> List[Table2Row]:
    """Popularity, block rate and CVE count per standard.

    Mirrors the paper's inclusion rule: standards used on at least 1%
    of sites or with at least one associated CVE.  Rows ordered by CVE
    count then sites, like the paper's table.
    """
    registry = result.registry
    corpus = cve_corpus if cve_corpus is not None else build_cve_corpus()
    cves = cves_by_standard(corpus)
    counts = metrics.standard_site_counts(result, BrowsingCondition.DEFAULT)
    rates = metrics.standard_block_rates(result)
    measured = max(1, len(result.measured_domains(BrowsingCondition.DEFAULT)))
    rows: List[Table2Row] = []
    for spec in registry.standards():
        sites = counts[spec.abbrev]
        n_cves = cves.get(spec.abbrev, 0)
        if sites / measured < 0.01 and n_cves == 0:
            continue
        rows.append(
            Table2Row(
                name=spec.name,
                abbrev=spec.abbrev,
                features=spec.n_features,
                sites=sites,
                block_rate=rates.get(spec.abbrev),
                cves=n_cves,
            )
        )
    rows.sort(key=lambda r: (-r.cves, -r.sites, r.abbrev))
    return rows


# ---------------------------------------------------------------------------
# Figure 8 — site complexity PDF
# ---------------------------------------------------------------------------

def figure8_site_complexity_pdf(
    result: SurveyResult, condition: str = BrowsingCondition.DEFAULT
) -> Dict[int, float]:
    """standards-per-site -> fraction of sites."""
    complexity = metrics.site_complexity(result, condition)
    total = max(1, len(complexity))
    histogram: Dict[int, int] = {}
    for value in complexity.values():
        histogram[value] = histogram.get(value, 0) + 1
    return {
        count: occurrences / total
        for count, occurrences in sorted(histogram.items())
    }


# ---------------------------------------------------------------------------
# Section 5.3 headline statistics
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HeadlineStatistics:
    total_features: int
    never_used_features: int
    under_one_percent_features: int  # used, but on <1% of sites
    blocked_over_90_features: int
    under_one_percent_with_blocking: int
    total_standards: int
    never_used_standards: int
    under_one_percent_standards: int

    @property
    def never_used_fraction(self) -> float:
        return self.never_used_features / self.total_features

    @property
    def under_one_percent_fraction(self) -> float:
        """Features used by <1% of the web, never-used included."""
        return (
            self.never_used_features + self.under_one_percent_features
        ) / self.total_features

    @property
    def blocked_under_one_percent_fraction(self) -> float:
        return self.under_one_percent_with_blocking / self.total_features


def headline_feature_statistics(result: SurveyResult) -> HeadlineStatistics:
    registry = result.registry
    measured = max(1, len(result.measured_domains(BrowsingCondition.DEFAULT)))
    counts = metrics.feature_site_counts(result, BrowsingCondition.DEFAULT)
    never = sum(1 for c in counts.values() if c == 0)
    under_1pct = sum(
        1 for c in counts.values() if 0 < c / measured < 0.01
    )
    rates = metrics.feature_block_rates(result)
    blocked_over_90 = sum(
        1 for rate in rates.values() if rate is not None and rate > 0.90
    )
    blocking_measured = max(
        1, len(result.measured_domains(BrowsingCondition.BLOCKING))
    )
    blocking_counts = metrics.feature_site_counts(
        result, BrowsingCondition.BLOCKING
    )
    blocking_under_1pct = sum(
        1 for c in blocking_counts.values()
        if c / blocking_measured < 0.01
    )
    standard_counts = metrics.standard_site_counts(
        result, BrowsingCondition.DEFAULT
    )
    never_standards = sum(1 for c in standard_counts.values() if c == 0)
    low_standards = sum(
        1 for c in standard_counts.values() if c / measured <= 0.01
    )
    return HeadlineStatistics(
        total_features=registry.feature_count(),
        never_used_features=never,
        under_one_percent_features=under_1pct,
        blocked_over_90_features=blocked_over_90,
        under_one_percent_with_blocking=blocking_under_1pct,
        total_standards=registry.standard_count(),
        never_used_standards=never_standards,
        under_one_percent_standards=low_standards,
    )

"""Injectable durability layer: every run-dir write goes through here.

The checkpoint layer (:mod:`repro.core.checkpoint`) claims the run
directory survives crashes *bit-identically* — but until this module
existed, every durable write assumed the storage layer itself never
fails: an ENOSPC or EIO mid-shard raised an unclassified ``OSError``
out of the crawl loop, and nothing could exercise the "crash exactly
between these two fsyncs" windows the design claims to cover.

:class:`Storage` owns the two durable-write primitives the whole
codebase uses:

* :meth:`Storage.append_record` — one JSONL record: write, flush,
  fsync, with a bounded retry loop that **rolls back the torn tail**
  (``ftruncate`` to the pre-write size) before re-attempting, so a
  failed attempt can never leave garbage mid-file;
* :meth:`Storage.replace_atomic` — the write-then-rename pattern for
  ``manifest.json`` / ``quarantine.json``: tmp write, fsync, rename,
  directory fsync, with the tmp removed before any retry.

A write that still fails after the retries raises
:class:`StorageError` — an ``OSError`` subclass classified by cause
(``enospc``, ``eio``, ``torn``) that the survey runner and CLI turn
into a structured, *resumable* failure instead of a crash.

:class:`FaultyStorage` is the chaos arm (seeded and deterministic,
like :class:`repro.net.chaos.ChaosSource` is for the network): it
injects ENOSPC, EIO and torn/short writes on chosen attempts so the
retry-and-rollback machinery is exercised for real, by
``repro chaos --storage`` and the storage-chaos CI job.

**Crashpoints** are the third leg: every durability boundary (before
and after each write, fsync and rename) fires a named crashpoint; the
crashpoint-matrix test harness arms one (point, hit) pair per run,
``os._exit``'s the process there — genuine kill ``-9`` semantics, no
``finally`` blocks, no buffered flushes — and asserts that resume
reproduces the uninterrupted run's digests bit for bit.

:class:`RunLock` rounds the module out: an advisory pid-stamped
``run.lock`` so two crawls cannot interleave appends into the same
run directory; stale locks from dead pids are reclaimed.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Tuple

#: exit status a crashpoint-armed process dies with (visible in tests)
CRASHPOINT_EXIT_CODE = 74

#: every durability boundary, in the order a write crosses them
CRASHPOINTS = (
    "append:start",       # nothing written yet
    "append:mid-write",   # half the record's bytes on disk (torn)
    "append:pre-fsync",   # full record written, not yet fsynced
    "append:post-fsync",  # the record is durable
    "replace:start",      # target and tmp both untouched
    "replace:mid-write",  # half the tmp file's bytes on disk (torn)
    "replace:pre-fsync",  # full tmp written, not yet fsynced
    "replace:pre-rename", # tmp durable, rename not yet issued (litter)
    "replace:post-rename",# the replacement is visible
)

# -- crashpoint machinery (module-level so the default Storage and any
#    FaultyStorage share one schedule) -----------------------------------

_armed: Optional[Tuple[str, int]] = None
_counts: Dict[str, int] = {}


def install_crashpoint(point: str, hit: int) -> None:
    """Arm ``os._exit`` at the ``hit``-th crossing of ``point``.

    The crashpoint-matrix harness calls this in a freshly forked child
    right before running the survey; the parent stays unarmed.
    """
    global _armed
    if point not in CRASHPOINTS:
        raise ValueError("unknown crashpoint %r" % point)
    _armed = (point, max(1, hit))


def clear_crashpoint() -> None:
    global _armed
    _armed = None


def reset_crashpoint_counts() -> None:
    _counts.clear()


def crashpoint_counts() -> Dict[str, int]:
    """How often each boundary was crossed since the last reset.

    An uninterrupted baseline run records these so the matrix knows
    exactly which (point, hit) cells exist to kill.
    """
    return dict(_counts)


def _fire(point: str) -> None:
    count = _counts.get(point, 0) + 1
    _counts[point] = count
    if _armed is not None and _armed == (point, count):
        # Genuine kill -9 semantics: no atexit, no finally, no flush.
        os._exit(CRASHPOINT_EXIT_CODE)


# -- errors --------------------------------------------------------------

class StorageError(OSError):
    """A durable write that failed even after the retry budget.

    Carries a structured cause so the crawl loop and the CLI can report
    "the disk failed" distinctly from "the code crashed" — and so tests
    can assert the failure class.  The run directory stays *resumable*:
    the failed write was rolled back (appends) or discarded (replaces)
    before this was raised.
    """

    def __init__(self, op: str, path: str, cause: str,
                 message: str) -> None:
        super().__init__("%s failed on %s: %s (%s)"
                         % (op, path, message, cause))
        self.op = op
        self.path = path
        self.cause = cause
        #: a storage failure never poisons later attempts — the dir is
        #: left consistent, so rerunning with --resume continues it
        self.resumable = True


def classify_errno(error_number: Optional[int]) -> str:
    """Map an errno to the fault-model's cause slugs."""
    if error_number in (errno.ENOSPC, getattr(errno, "EDQUOT", None)):
        return "enospc"
    if error_number == errno.EIO:
        return "eio"
    if error_number is None:
        return "unknown"
    return errno.errorcode.get(error_number, "errno-%d"
                               % error_number).lower()


class _InjectedFault(OSError):
    """Internal: a fault FaultyStorage injected (cause pre-classified)."""

    def __init__(self, cause: str) -> None:
        super().__init__("injected %s fault" % cause)
        self.cause = cause


# -- the durable-write primitives ----------------------------------------

class AppendHandle:
    """An open append-only shard: path + unbuffered binary file.

    Unbuffered (``buffering=0``) so every write goes straight to the
    fd: a kill -9 after ``write`` can lose at most what ``fsync``
    hadn't pinned, never a userspace buffer the durability math forgot.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.file = open(path, "ab", buffering=0)

    def size(self) -> int:
        return os.fstat(self.file.fileno()).st_size

    def rollback(self, size: int) -> None:
        """Truncate a failed attempt's torn tail back off the file."""
        os.ftruncate(self.file.fileno(), size)

    def close(self) -> None:
        self.file.close()


class Storage:
    """Durable-write primitives with bounded retry and torn-tail rollback.

    Subclass hook points (``_write_bytes`` / ``_fsync`` / ``_replace``)
    are the fault surface :class:`FaultyStorage` drives; the retry /
    rollback / crashpoint structure lives here so the faulty arm
    exercises exactly the production code path.
    """

    def __init__(self, attempts: int = 3) -> None:
        #: write attempts per durable operation (1 disables retries)
        self.attempts = max(1, attempts)
        #: observability: how much repair work the layer performed
        self.stats: Dict[str, int] = {
            "appends": 0,
            "replaces": 0,
            "write_retries": 0,
            "faults_injected": 0,
            "faults_unabsorbed": 0,
        }

    # -- fault surface (overridden by FaultyStorage) ---------------------

    def _write_bytes(self, file, data: bytes, op: str, path: str,
                     attempt: int) -> None:
        file.write(data)

    def _fsync(self, file, op: str, path: str, attempt: int) -> None:
        os.fsync(file.fileno())

    def _replace(self, tmp_path: str, path: str, attempt: int) -> None:
        os.replace(tmp_path, path)

    def _begin(self, op: str, path: str, attempt: int) -> None:
        """Called at the top of every attempt (fault hook)."""

    # -- primitives ------------------------------------------------------

    def open_append(self, path: str) -> AppendHandle:
        handle = AppendHandle(path)
        if handle.size() == 0:
            # A brand-new shard: pin the directory entry too, so the
            # file itself survives a crash right after creation.
            self._fsync_dir(os.path.dirname(path) or ".")
        return handle

    def append_record(self, handle: AppendHandle,
                      record: Dict[str, Any]) -> None:
        """Durably append one JSONL record: write, flush, fsync.

        Retries transient failures up to ``attempts`` times; every
        failed attempt's partial bytes are truncated back off before
        the next one, so the file is parseable at every instant.
        """
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        half = len(data) // 2
        self.stats["appends"] += 1
        last_error: Optional[StorageError] = None
        for attempt in range(1, self.attempts + 1):
            start = handle.size()
            try:
                self._begin("append", handle.path, attempt)
                _fire("append:start")
                # Two writes with a boundary between them: the
                # "append:mid-write" crashpoint is a *real* torn write,
                # half the record's bytes on disk and no newline.
                self._write_bytes(handle.file, data[:half], "append",
                                  handle.path, attempt)
                _fire("append:mid-write")
                self._write_bytes(handle.file, data[half:], "append",
                                  handle.path, attempt)
                _fire("append:pre-fsync")
                self._fsync(handle.file, "append", handle.path, attempt)
                _fire("append:post-fsync")
                if last_error is not None:
                    self.stats["write_retries"] += 1
                return
            except OSError as error:
                last_error = self._storage_error(
                    "append", handle.path, error
                )
                try:
                    handle.rollback(start)
                except OSError:
                    # Rollback itself failed (the disk is truly gone).
                    # The torn tail stays; resume's repair drops it.
                    break
        self.stats["faults_unabsorbed"] += 1
        raise last_error

    def replace_atomic(self, path: str, payload: Dict[str, Any],
                       indent: Optional[int] = 2) -> None:
        """Atomically replace ``path`` with serialized ``payload``.

        Write-then-rename: a crash never leaves a half-written target,
        only (at worst) an orphan ``path + ".tmp"`` that resume and
        ``fsck --repair`` clean up.  Failed attempts discard their tmp
        before retrying.  ``indent=None`` writes compact JSON (the
        large ``survey.json`` result).
        """
        data = json.dumps(
            payload, indent=indent, sort_keys=True,
            separators=(",", ":") if indent is None else None,
        )
        raw = data.encode("utf-8")
        half = len(raw) // 2
        tmp_path = path + ".tmp"
        self.stats["replaces"] += 1
        last_error: Optional[StorageError] = None
        for attempt in range(1, self.attempts + 1):
            try:
                self._begin("replace", path, attempt)
                _fire("replace:start")
                with open(tmp_path, "wb") as handle:
                    self._write_bytes(handle, raw[:half], "replace",
                                      path, attempt)
                    _fire("replace:mid-write")
                    self._write_bytes(handle, raw[half:], "replace",
                                      path, attempt)
                    handle.flush()
                    _fire("replace:pre-fsync")
                    self._fsync(handle, "replace", path, attempt)
                _fire("replace:pre-rename")
                self._replace(tmp_path, path, attempt)
                _fire("replace:post-rename")
                self._fsync_dir(os.path.dirname(path) or ".")
                if last_error is not None:
                    self.stats["write_retries"] += 1
                return
            except OSError as error:
                last_error = self._storage_error("replace", path, error)
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
        self.stats["faults_unabsorbed"] += 1
        raise last_error

    # -- helpers ---------------------------------------------------------

    def _storage_error(self, op: str, path: str,
                       error: OSError) -> StorageError:
        if isinstance(error, StorageError):
            return error
        if isinstance(error, _InjectedFault):
            cause = error.cause
        else:
            cause = classify_errno(error.errno)
        return StorageError(op, path, cause, str(error))

    @staticmethod
    def _fsync_dir(dir_path: str) -> None:
        """Pin directory metadata (new file / rename) — best effort.

        Not part of the fault surface: platforms without O_DIRECTORY
        or fsync-able directories simply skip it.
        """
        try:
            fd = os.open(dir_path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)


class FaultyStorage(Storage):
    """Seeded, deterministic storage-fault injection (the chaos arm).

    Each durable operation gets an operation index per target path;
    a hash of (seed, op, basename, index) decides — identically in
    every process and on every re-run — whether its early attempts
    fault and with which pathology:

    * ``enospc`` — the write fails before any byte lands;
    * ``eio``    — the fsync fails after the bytes landed (the page
      cache took them; the platters did not);
    * ``torn``   — half the bytes land, then the device errors.

    Faults fire on attempts ``<= fail_attempts`` only, so a storage
    retry budget of ``fail_attempts + 1`` absorbs every injected fault
    and the run's digests stay bit-identical to a clean-storage run —
    the same shape as the flaky-web network-chaos acceptance.
    """

    KINDS = ("enospc", "eio", "torn")

    def __init__(self, seed: int, fault_rate: float = 1.0,
                 fail_attempts: int = 1, attempts: int = 3) -> None:
        super().__init__(attempts=attempts)
        self.seed = seed
        self.fault_rate = max(0.0, min(1.0, fault_rate))
        self.fail_attempts = max(0, fail_attempts)
        #: per-(op, path) durable-operation counter
        self._op_index: Dict[Tuple[str, str], int] = {}
        self._current: Dict[Tuple[str, str], int] = {}

    def _begin(self, op: str, path: str, attempt: int) -> None:
        key = (op, os.path.basename(path))
        if attempt == 1:
            index = self._op_index.get(key, 0) + 1
            self._op_index[key] = index
        self._current[key] = self._op_index.get(key, 1)

    def _verdict(self, op: str, path: str) -> Optional[str]:
        key = (op, os.path.basename(path))
        index = self._current.get(key, 1)
        digest = hashlib.sha256(
            ("%d:%s:%s:%d" % (self.seed, op, key[1], index))
            .encode("utf-8")
        ).digest()
        roll = int.from_bytes(digest[:4], "big") / 2 ** 32
        if roll >= self.fault_rate:
            return None
        return self.KINDS[digest[4] % len(self.KINDS)]

    def _inject(self, cause: str) -> None:
        self.stats["faults_injected"] += 1
        raise _InjectedFault(cause)

    def _write_bytes(self, file, data: bytes, op: str, path: str,
                     attempt: int) -> None:
        if attempt <= self.fail_attempts:
            kind = self._verdict(op, path)
            if kind == "enospc":
                self._inject("enospc")
            if kind == "torn":
                # Half of *this* chunk lands before the device errors;
                # the base class's rollback must clean it up.
                file.write(data[: len(data) // 2])
                self._inject("torn")
        file.write(data)

    def _fsync(self, file, op: str, path: str, attempt: int) -> None:
        if (attempt <= self.fail_attempts
                and self._verdict(op, path) == "eio"):
            self._inject("eio")
        os.fsync(file.fileno())


# -- run-dir advisory lock -----------------------------------------------

LOCK_NAME = "run.lock"


class RunLockError(ValueError):
    """The run directory is locked by another live crawl process."""


class RunLock:
    """An advisory pid-stamped lock on a run directory.

    Two crawls appending into the same shards would interleave records
    and corrupt both runs' ordering guarantees; the lock makes the
    second process abort loudly (exit 2 via :class:`RunLockError`)
    instead.  Stale locks — the pid no longer exists, e.g. after a
    kill -9 — are reclaimed automatically; ``fsck`` flags a live one.
    """

    def __init__(self, path: str, pid: int) -> None:
        self.path = path
        self.pid = pid

    @classmethod
    def acquire(cls, run_dir: str) -> "RunLock":
        os.makedirs(run_dir, exist_ok=True)
        path = os.path.join(run_dir, LOCK_NAME)
        for _ in range(8):
            try:
                fd = os.open(path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                holder = read_lock(path)
                pid = holder.get("pid") if holder else None
                if (isinstance(pid, int) and pid != os.getpid()
                        and pid_alive(pid)):
                    raise RunLockError(
                        "%s is locked by live process %d (%s); a "
                        "second crawl into the same run directory "
                        "would interleave its shards — wait for it or "
                        "choose another directory"
                        % (run_dir, pid, holder.get("command", "?"))
                    )
                # Dead pid or unreadable litter: reclaim and retry.
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            payload = json.dumps({
                "pid": os.getpid(),
                "command": "repro survey",
            }, sort_keys=True)
            try:
                os.write(fd, payload.encode("utf-8"))
                os.fsync(fd)
            finally:
                os.close(fd)
            return cls(path, os.getpid())
        raise RunLockError(
            "%s: could not acquire run.lock (another process keeps "
            "recreating it)" % run_dir
        )

    def release(self) -> None:
        """Remove the lock if this process still owns it."""
        holder = read_lock(self.path)
        if holder and holder.get("pid") == self.pid:
            try:
                os.unlink(self.path)
            except OSError:
                pass


def read_lock(path: str) -> Optional[Dict[str, Any]]:
    """The lock file's payload, or None when absent/unreadable."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


def pid_alive(pid: int) -> bool:
    """Whether a pid names a live process (advisory-lock semantics)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def orphan_tmp_files(run_dir: str) -> List[str]:
    """Crash litter: ``*.tmp`` names the write-then-rename left behind."""
    try:
        names = os.listdir(run_dir)
    except OSError:
        return []
    return sorted(n for n in names if n.endswith(".tmp"))

"""Crash-safe incremental survey persistence (checkpoint/resume).

A full crawl is a multi-hour job; :mod:`repro.core.persistence` only
serializes a *finished* result, so a crash at site 9,800 used to lose
everything.  This module gives the survey runner durable intermediate
state instead:

* a **run directory** holding a ``manifest.json`` (what crawl this is:
  registry fingerprint, conditions, visits, seed, domain-list digest)
  and one **append-only JSONL shard per condition**
  (``shard-<condition>.jsonl``, one record per measured site);
* every record is written, flushed and fsynced before the crawl moves
  on, so a SIGKILL can cost at most the site in flight;
* on resume the shards are re-read, the manifest is validated against
  the live registry and config (a checkpoint recorded against a
  different corpus or crawl shape fails loudly), and already-measured
  (condition, domain) pairs are skipped;
* a torn trailing write — the classic crash artifact — is detected,
  dropped (the site is simply re-measured; the crawl is deterministic)
  and the shard repaired, while corruption *inside* the shard raises
  :class:`CheckpointError` rather than silently losing data.

Records are keyed by (condition, domain); if a shard somehow holds two
records for the same site the **last good record wins**, matching
append-only semantics.
"""

from __future__ import annotations

import json
import os
from typing import IO, Any, Dict, List, Optional, Sequence, Tuple

from repro.browser.session import TELEMETRY_COUNTERS, SiteMeasurement
from repro.core import runmetrics
from repro.core.persistence import (
    PersistenceError,
    measurement_from_dict,
    measurement_to_dict,
    registry_fingerprint,
    survey_to_dict,
)
from repro.core.storage import (
    LOCK_NAME,
    AppendHandle,
    Storage,
    orphan_tmp_files,
    pid_alive,
    read_lock,
)
from repro.webidl.registry import FeatureRegistry

CHECKPOINT_VERSION = 1
MANIFEST_NAME = "manifest.json"
RESULT_NAME = "survey.json"
QUARANTINE_NAME = "quarantine.json"
LEASES_NAME = "leases.json"
METRICS_NAME = "metrics.jsonl"

#: run lifecycle stamps recorded in the manifest's ``status`` field
STATUS_RUNNING = "running"
STATUS_INTERRUPTED = "interrupted"
STATUS_COMPLETE = "complete"


class CheckpointError(ValueError):
    """Unusable, incompatible or corrupt survey checkpoint."""


def shard_name(condition: str) -> str:
    return "shard-%s.jsonl" % condition


def trace_shard_name(condition: str) -> str:
    """The trace shard riding next to a condition's measurement shard."""
    return "trace-%s.jsonl" % condition


def domains_digest(domains: Sequence[str]) -> str:
    """A stable identity for the crawl's target list."""
    import hashlib

    hasher = hashlib.sha256()
    for domain in domains:
        hasher.update(domain.encode("utf-8"))
        hasher.update(b"\x1e")
    return hasher.hexdigest()[:16]


def append_record(handle: IO[str], record: Dict[str, Any]) -> None:
    """Durably append one JSONL record: write, flush, fsync."""
    handle.write(json.dumps(record, sort_keys=True,
                            separators=(",", ":")) + "\n")
    handle.flush()
    os.fsync(handle.fileno())


def _valid_record(record: Any, payload_key: str) -> bool:
    return (
        isinstance(record, dict)
        and isinstance(record.get("condition"), str)
        and isinstance(record.get("domain"), str)
        and isinstance(record.get(payload_key), dict)
    )


def _valid_metrics_record(record: Any) -> bool:
    return (
        isinstance(record, dict)
        and isinstance(record.get("seq"), int)
        and isinstance(record.get("kind"), str)
        and isinstance(record.get("metrics"), dict)
    )


def load_shard_records(
    path: str, repair: bool = True, payload_key: str = "measurement"
) -> Tuple[List[Dict[str, Any]], int]:
    """Read a JSONL shard, recovering from a torn trailing write.

    Returns ``(records, dropped)``.  A record line only counts when it
    is newline-terminated *and* parses as a well-formed record — a
    crash mid-``write`` leaves a partial line that fails one of the
    two, and that tail is dropped (and, with ``repair``, truncated off
    the file so later appends stay parseable).  A bad line *followed by
    good data* is not a crash artifact; that raises
    :class:`CheckpointError` instead of guessing.
    """
    return _scan_jsonl(
        path, repair, lambda record: _valid_record(record, payload_key)
    )


def load_metrics_records(
    path: str, repair: bool = False
) -> Tuple[List[Dict[str, Any]], int]:
    """Read a ``metrics.jsonl`` time series of registry snapshots.

    Same torn-tail contract as :func:`load_shard_records`, but the
    records are snapshot envelopes (``kind``/``seq``/``metrics``), not
    per-site measurements.  Read-only by default: the status and
    metrics CLI surfaces poll live runs and must never write.
    """
    return _scan_jsonl(path, repair, _valid_metrics_record)


def _scan_jsonl(path, repair, validate) -> Tuple[List[Dict[str, Any]], int]:
    with open(path, "rb") as handle:
        raw = handle.read()
    records: List[Dict[str, Any]] = []
    offset = 0
    good_end = 0
    dropped = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        terminated = newline != -1
        end = newline if terminated else len(raw)
        line = raw[offset:end]
        next_offset = end + 1 if terminated else len(raw)
        if not line.strip():
            offset = next_offset
            continue
        record: Optional[Dict[str, Any]] = None
        if terminated:
            try:
                parsed = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                parsed = None
            if validate(parsed):
                record = parsed
        if record is not None:
            records.append(record)
            good_end = next_offset
            offset = next_offset
            continue
        # Bad line: a crash artifact only if nothing follows it.
        if raw[next_offset:].strip():
            raise CheckpointError(
                "corrupt checkpoint shard %s: bad record at byte %d "
                "followed by further data" % (path, offset)
            )
        dropped += 1
        break
    if dropped and repair and good_end < len(raw):
        os.truncate(path, good_end)
    return records, dropped


class SurveyCheckpoint:
    """Durable intermediate state of one survey run.

    Created by :func:`repro.core.survey.run_survey` when given a
    ``run_dir``; tests and tools can also drive it directly.
    """

    def __init__(
        self,
        run_dir: str,
        registry: FeatureRegistry,
        manifest: Dict[str, Any],
        storage: Optional[Storage] = None,
    ) -> None:
        self.run_dir = run_dir
        self.registry = registry
        self.manifest = manifest
        #: the injectable durability layer every write routes through
        self.storage = storage if storage is not None else Storage()
        #: condition -> domain -> measurement (recovered + appended)
        self._records: Dict[str, Dict[str, SiteMeasurement]] = {
            condition: {} for condition in manifest["conditions"]
        }
        #: torn trailing lines dropped while loading shards
        self.recovered_lines = 0
        #: orphan ``*.tmp`` crash litter removed while resuming
        self.recovered_tmp_files: List[str] = []
        self._handles: Dict[str, AppendHandle] = {}
        self._trace_handles: Dict[str, AppendHandle] = {}
        self._metrics_handle: Optional[AppendHandle] = None
        #: highest snapshot seq already durable in metrics.jsonl; the
        #: metrics pump continues from here so a resumed run never
        #: duplicates a snapshot sequence number
        self._metrics_seq = 0
        #: condition -> domain -> the per-site metrics sibling that
        #: rode the measurement record (None when the record carried
        #: none); re-ingested on resume to rebuild stable totals
        self._site_metrics: Dict[str, Dict[str, Optional[Dict[str, Any]]]] = {
            condition: {} for condition in manifest["conditions"]
        }
        #: domain -> times this site killed or hung a crawl worker
        #: (the watchdog's poison-site strike counts; persisted so a
        #: resumed run never re-crawls a quarantined site)
        self._strikes: Dict[str, int] = {}
        #: condition -> domain -> highest lease epoch ever issued.
        #: Persisted so epochs stay monotonic across resume: a worker
        #: that outlived a crash cannot hold an epoch a fresh
        #: supervisor would re-issue.
        self._leases: Dict[str, Dict[str, int]] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def attach(
        cls,
        run_dir: str,
        registry: FeatureRegistry,
        config,
        domains: Sequence[str],
        resume: bool = False,
        started_at: Optional[float] = None,
        storage: Optional[Storage] = None,
    ) -> "SurveyCheckpoint":
        """Create a fresh run directory, or resume an existing one.

        Without ``resume`` the directory must not already hold a
        checkpoint (refusing beats silently clobbering hours of
        crawl); with it, an empty directory simply starts fresh.
        """
        manifest_path = os.path.join(run_dir, MANIFEST_NAME)
        exists = os.path.exists(manifest_path)
        if exists and not resume:
            raise CheckpointError(
                "%s already holds a survey checkpoint; resume it "
                "(resume=True / --resume) or choose a new directory"
                % run_dir
            )
        if not exists:
            return cls.create(
                run_dir, registry, config, domains,
                started_at=started_at, storage=storage,
            )
        return cls.open(run_dir, registry, config, domains,
                        storage=storage)

    @classmethod
    def create(
        cls,
        run_dir: str,
        registry: FeatureRegistry,
        config,
        domains: Sequence[str],
        started_at: Optional[float] = None,
        storage: Optional[Storage] = None,
    ) -> "SurveyCheckpoint":
        import datetime
        import time

        storage = storage if storage is not None else Storage()
        os.makedirs(run_dir, exist_ok=True)
        # The manifest's start stamp is the run's ONE wall-clock read,
        # kept human-readable; all duration math uses perf_counter.
        stamp = time.time() if started_at is None else started_at
        manifest = {
            "checkpoint_version": CHECKPOINT_VERSION,
            "registry_fingerprint": registry_fingerprint(registry),
            "conditions": list(config.conditions),
            "visits_per_site": config.visits_per_site,
            "seed": config.seed,
            "max_sites": config.max_sites,
            "n_domains": len(domains),
            "domains_digest": domains_digest(domains),
            "budget": cls._budget_fingerprint(config),
            "resilience": cls._resilience_fingerprint(config),
            "tracing": bool(getattr(config, "trace", False)),
            # Recorded for provenance only — never mismatch-checked:
            # the two engines are digest-identical by construction
            # (tests/test_engine_differential.py), so resuming a tree
            # run with the compiled engine mixes nothing incomparable.
            "engine": getattr(config, "engine", "compiled"),
            # Provenance only, like the engine: lease deadlines and RSS
            # ceilings change *when* work is redone or recycled on one
            # machine, never what a completed measurement contains.
            "process": {
                "lease_deadline": getattr(config, "lease_deadline", None),
                "max_worker_rss_mb": getattr(
                    config, "max_worker_rss_mb", None
                ),
            },
            "started_at": datetime.datetime.fromtimestamp(
                stamp, datetime.timezone.utc
            ).isoformat(),
            "status": STATUS_RUNNING,
        }
        # Write-then-rename so a crash never leaves a half manifest.
        storage.replace_atomic(
            os.path.join(run_dir, MANIFEST_NAME), manifest
        )
        return cls(run_dir, registry, manifest, storage=storage)

    @classmethod
    def open(
        cls,
        run_dir: str,
        registry: FeatureRegistry,
        config,
        domains: Sequence[str],
        storage: Optional[Storage] = None,
    ) -> "SurveyCheckpoint":
        """Open an existing checkpoint, validating compatibility."""
        manifest_path = os.path.join(run_dir, MANIFEST_NAME)
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except OSError as error:
            raise CheckpointError(
                "cannot read checkpoint manifest: %s" % error
            )
        except json.JSONDecodeError as error:
            raise CheckpointError(
                "corrupt checkpoint manifest %s: %s"
                % (manifest_path, error)
            )
        cls._validate_manifest(manifest, registry, config, domains)
        checkpoint = cls(run_dir, registry, manifest, storage=storage)
        checkpoint._clean_orphan_tmp_files()
        checkpoint._load_shards()
        checkpoint._repair_trace_shards()
        checkpoint._load_metrics()
        checkpoint._load_quarantine()
        checkpoint._load_leases()
        if manifest.get("status") != STATUS_RUNNING:
            # An interrupted/complete run picked back up: re-stamp so
            # the manifest reflects what the directory is doing now.
            checkpoint.mark_status(STATUS_RUNNING)
        return checkpoint

    @staticmethod
    def _validate_manifest(
        manifest: Dict[str, Any],
        registry: FeatureRegistry,
        config,
        domains: Sequence[str],
    ) -> None:
        def mismatch(what: str, recorded, live) -> CheckpointError:
            return CheckpointError(
                "checkpoint %s mismatch: recorded %r, this run has %r "
                "— a resumed crawl must use the same corpus and "
                "configuration" % (what, recorded, live)
            )

        if manifest.get("checkpoint_version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                "unsupported checkpoint version %r"
                % manifest.get("checkpoint_version")
            )
        fingerprint = registry_fingerprint(registry)
        if manifest.get("registry_fingerprint") != fingerprint:
            raise mismatch(
                "registry", manifest.get("registry_fingerprint"),
                fingerprint,
            )
        checks = [
            ("conditions", list(config.conditions)),
            ("visits_per_site", config.visits_per_site),
            ("seed", config.seed),
            ("max_sites", config.max_sites),
            ("domains_digest", domains_digest(domains)),
        ]
        if "budget" in manifest:
            # Budget limits shape what a measurement contains (partial
            # rounds); resuming under different limits would mix
            # incomparable records.  Checkpoints from before the budget
            # layer simply lack the key and stay resumable.
            checks.append(
                ("budget", SurveyCheckpoint._budget_fingerprint(config))
            )
        if "resilience" in manifest:
            # Retry counts and jitter shape which sites succeed and how
            # much budget each round burns; mixing records crawled under
            # different resilience settings would be incomparable too.
            checks.append(
                ("resilience",
                 SurveyCheckpoint._resilience_fingerprint(config))
            )
        if "tracing" in manifest:
            # A run resumed with tracing toggled would leave trace
            # shards covering only part of the crawl — refuse, like any
            # other configuration drift.  Pre-tracing checkpoints lack
            # the key and stay resumable.
            checks.append(
                ("tracing", bool(getattr(config, "trace", False)))
            )
        for key, live in checks:
            if manifest.get(key) != live:
                raise mismatch(key, manifest.get(key), live)

    @staticmethod
    def _budget_fingerprint(config) -> Optional[Dict[str, Any]]:
        budget = getattr(config, "budget", None)
        return budget.fingerprint() if budget is not None else None

    @staticmethod
    def _resilience_fingerprint(config) -> Optional[Dict[str, Any]]:
        resilience = getattr(config, "resilience", None)
        if resilience is None:
            return None
        # The fingerprint records the *effective* config: an unseeded
        # jitter seed resolves from the survey seed, exactly as
        # _build_crawler resolves it.
        return resilience.seeded(config.seed).fingerprint()

    # -- shard IO --------------------------------------------------------

    def _shard_path(self, condition: str) -> str:
        return os.path.join(self.run_dir, shard_name(condition))

    def _load_shards(self) -> None:
        for condition in self.manifest["conditions"]:
            path = self._shard_path(condition)
            if not os.path.exists(path):
                continue
            records, dropped = load_shard_records(path)
            self.recovered_lines += dropped
            for record in records:
                if record["condition"] != condition:
                    raise CheckpointError(
                        "record for condition %r found in shard %s"
                        % (record["condition"], path)
                    )
                try:
                    measurement = measurement_from_dict(
                        record["domain"], condition,
                        record["measurement"], self.registry,
                    )
                except (PersistenceError, KeyError, TypeError) as error:
                    raise CheckpointError(
                        "unusable record for %r in %s: %s"
                        % (record["domain"], path, error)
                    )
                # Last good record wins (append-only semantics).
                self._records[condition][record["domain"]] = measurement
                metrics = record.get("metrics")
                self._site_metrics[condition][record["domain"]] = (
                    metrics if isinstance(metrics, dict) else None
                )

    def append(
        self,
        measurement: SiteMeasurement,
        lease_epoch: Optional[int] = None,
        metrics: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Durably record one finished site-measurement.

        ``lease_epoch`` rides as a *sibling* of the measurement payload
        — never inside it — so fencing provenance is auditable
        (``repro fsck`` checks that a re-leased site's surviving record
        carries the highest epoch) without perturbing the measurement
        serialization or the survey digest.  ``metrics`` rides the same
        way: the site's deterministic metric delta
        (:func:`repro.core.runmetrics.wire_delta`) travels with the
        record so a resumed run can rebuild its stable metric totals
        from exactly the recorded site set.
        """
        condition = measurement.condition
        handle = self._handles.get(condition)
        if handle is None:
            handle = self.storage.open_append(
                self._shard_path(condition)
            )
            self._handles[condition] = handle
        record = {
            "condition": condition,
            "domain": measurement.domain,
            "measurement": measurement_to_dict(measurement),
        }
        if lease_epoch is not None:
            record["lease_epoch"] = lease_epoch
        if metrics is not None:
            record["metrics"] = metrics
        self.storage.append_record(handle, record)
        self._records[condition][measurement.domain] = measurement
        self._site_metrics[condition][measurement.domain] = metrics

    # -- trace shards ----------------------------------------------------

    def _trace_shard_path(self, condition: str) -> str:
        return os.path.join(self.run_dir, trace_shard_name(condition))

    def _repair_trace_shards(self) -> None:
        """Truncate torn trailing trace writes before resuming.

        The measurement shards are repaired by :func:`_load_shards`'s
        read; the trace shards are never read on resume, so a torn
        tail would otherwise sit mid-file once new records append
        after it — which readers rightly treat as corruption.
        """
        for condition in self.manifest["conditions"]:
            path = self._trace_shard_path(condition)
            if os.path.exists(path):
                _, dropped = load_shard_records(
                    path, repair=True, payload_key="trace"
                )
                self.recovered_lines += dropped

    def append_trace(
        self, condition: str, domain: str, trace: Dict[str, Any]
    ) -> None:
        """Durably record one site's span trace.

        Called *before* the matching measurement append: a crash
        between the two leaves an orphan trace (harmless — the site is
        re-measured on resume and its trace re-recorded, last-wins),
        never a measured site with no trace.
        """
        handle = self._trace_handles.get(condition)
        if handle is None:
            handle = self.storage.open_append(
                self._trace_shard_path(condition)
            )
            self._trace_handles[condition] = handle
        self.storage.append_record(handle, {
            "condition": condition,
            "domain": domain,
            "trace": trace,
        })

    # -- metrics time series ---------------------------------------------

    def _metrics_path(self) -> str:
        return os.path.join(self.run_dir, METRICS_NAME)

    def _load_metrics(self) -> None:
        """Repair the metrics tail and recover the snapshot cursor.

        Like the trace shards, ``metrics.jsonl`` is append-only and
        never read back by the crawl itself, so a torn trailing
        snapshot must be truncated before new appends land after it.
        The highest durable ``seq`` is kept so the resumed run's pump
        continues the sequence instead of duplicating it.
        """
        path = self._metrics_path()
        if not os.path.exists(path):
            return
        records, dropped = load_metrics_records(path, repair=True)
        self.recovered_lines += dropped
        for record in records:
            if record["seq"] > self._metrics_seq:
                self._metrics_seq = record["seq"]

    def append_metrics(self, record: Dict[str, Any]) -> None:
        """Durably append one registry snapshot to the time series."""
        if self._metrics_handle is None:
            self._metrics_handle = self.storage.open_append(
                self._metrics_path()
            )
        self.storage.append_record(self._metrics_handle, record)
        seq = record.get("seq")
        if isinstance(seq, int) and seq > self._metrics_seq:
            self._metrics_seq = seq

    def last_metrics_seq(self) -> int:
        """Highest snapshot seq durable so far (0 = none yet)."""
        return self._metrics_seq

    def site_metrics(
        self, condition: str
    ) -> Dict[str, Optional[Dict[str, Any]]]:
        """Recorded per-site metric siblings for a condition (a copy)."""
        return dict(self._site_metrics.get(condition, {}))

    def close(self) -> None:
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()
        for handle in self._trace_handles.values():
            handle.close()
        self._trace_handles.clear()
        if self._metrics_handle is not None:
            self._metrics_handle.close()
            self._metrics_handle = None

    # -- poison-site quarantine ------------------------------------------

    def _quarantine_path(self) -> str:
        return os.path.join(self.run_dir, QUARANTINE_NAME)

    def _load_quarantine(self) -> None:
        path = self._quarantine_path()
        if not os.path.exists(path):
            return
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(
                "corrupt quarantine file %s: %s" % (path, error)
            )
        strikes = data.get("strikes")
        if not isinstance(strikes, dict):
            raise CheckpointError(
                "corrupt quarantine file %s: no strikes table" % path
            )
        self._strikes = {str(d): int(n) for d, n in strikes.items()}

    def _write_quarantine(self) -> None:
        # Write-then-rename, like the manifest: a crash mid-strike
        # leaves the previous strike table, never a torn one (the site
        # then gets one free retry, which is safe — the threshold just
        # fires one kill later).
        self.storage.replace_atomic(
            self._quarantine_path(), {"strikes": self._strikes}
        )

    def add_strike(self, domain: str) -> int:
        """Record that a site killed or hung a worker; returns total."""
        self._strikes[domain] = self._strikes.get(domain, 0) + 1
        self._write_quarantine()
        return self._strikes[domain]

    def strike_count(self, domain: str) -> int:
        return self._strikes.get(domain, 0)

    # -- fenced site leases ----------------------------------------------

    def _leases_path(self) -> str:
        return os.path.join(self.run_dir, LEASES_NAME)

    def _load_leases(self) -> None:
        path = self._leases_path()
        if not os.path.exists(path):
            return
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(
                "corrupt lease file %s: %s" % (path, error)
            )
        leases = data.get("leases")
        if not isinstance(leases, dict):
            raise CheckpointError(
                "corrupt lease file %s: no leases table" % path
            )
        self._leases = {
            str(condition): {
                str(domain): int(epoch)
                for domain, epoch in by_domain.items()
            }
            for condition, by_domain in leases.items()
        }

    def _write_leases(self) -> None:
        # Write-then-rename: a crash mid-issue keeps the previous
        # table.  That can only *lower* the recorded epoch by the one
        # being issued, and the matching dispatch never happened — the
        # resumed supervisor re-issues the same number to a fresh
        # dispatch, so fencing still holds.
        self.storage.replace_atomic(
            self._leases_path(), {"leases": self._leases}
        )

    def issue_lease(self, condition: str, domain: str) -> int:
        """Issue the next lease epoch for one dispatched site.

        Epochs are monotonically increasing per (condition, domain)
        and durable: only the result carrying the *latest* epoch is
        accepted, so a hung-then-replaced worker's late result cannot
        double-count or overwrite its successor's.
        """
        by_domain = self._leases.setdefault(condition, {})
        epoch = by_domain.get(domain, 0) + 1
        by_domain[domain] = epoch
        self._write_leases()
        return epoch

    def lease_epoch(self, condition: str, domain: str) -> int:
        """The highest epoch issued for a site (0 = never leased)."""
        return self._leases.get(condition, {}).get(domain, 0)

    # -- views -----------------------------------------------------------

    def done(self, condition: str) -> Dict[str, SiteMeasurement]:
        """Already-measured sites for a condition (a copy)."""
        return dict(self._records.get(condition, {}))

    def done_counts(self) -> Dict[str, int]:
        """condition -> number of sites already measured."""
        return {
            condition: len(by_domain)
            for condition, by_domain in self._records.items()
        }

    @property
    def n_domains(self) -> int:
        return self.manifest["n_domains"]

    def write_result(self, result) -> str:
        """Save the finished survey alongside its shards.

        Write-then-rename through the durability layer — a crash mid
        result write leaves an orphan tmp, never a torn
        ``survey.json`` that fsck would flag as unreadable — then the
        manifest is stamped complete.
        """
        path = os.path.join(self.run_dir, RESULT_NAME)
        self.storage.replace_atomic(
            path, survey_to_dict(result), indent=None
        )
        self.mark_status(STATUS_COMPLETE)
        return path

    def mark_status(self, status: str) -> None:
        """Re-stamp the manifest's lifecycle field atomically."""
        self.manifest["status"] = status
        self.storage.replace_atomic(
            os.path.join(self.run_dir, MANIFEST_NAME), self.manifest
        )

    def _clean_orphan_tmp_files(self) -> None:
        """Remove ``*.tmp`` crash litter before resuming.

        A crash between tmp write and ``os.replace`` strands the tmp
        forever — the final file (when present) is the authoritative
        state, so the orphan is simply deleted.  Roll-forward is never
        needed on resume: a missing manifest means :meth:`attach`
        created a fresh one, and every other replaced file is an
        optimization the crawl rebuilds.
        """
        for name in orphan_tmp_files(self.run_dir):
            try:
                os.unlink(os.path.join(self.run_dir, name))
            except OSError:
                continue
            self.recovered_tmp_files.append(name)


# -- offline integrity check (``repro fsck``) ---------------------------

#: manifest keys every checkpoint version 1 run directory must carry
_MANIFEST_REQUIRED = (
    "checkpoint_version",
    "registry_fingerprint",
    "conditions",
    "visits_per_site",
    "seed",
    "n_domains",
    "domains_digest",
)

#: measurement keys every shard record must carry (the version-1
#: serialization floor; later fields are optional-with-defaults)
_MEASUREMENT_REQUIRED = (
    "rounds_completed",
    "rounds_ok",
    "features",
    "invocations",
)


def _stable_counter_values(
    snapshot: Dict[str, Any]
) -> Dict[Any, Any]:
    """Comparable values of a snapshot's stable counters/histograms.

    Keyed (name, sorted labels); gauges and unstable series are
    excluded — they legitimately move both ways (and reset to zero
    when a resumed process starts fresh).
    """
    out: Dict[Any, Any] = {}
    for entry in snapshot.get("series", ()):
        if not entry.get("stable"):
            continue
        labels = entry.get("labels") or {}
        key = (entry.get("name"), tuple(sorted(labels.items())))
        if entry.get("kind") == "histogram":
            out[key] = (entry.get("count", 0), entry.get("sum", 0))
        elif entry.get("kind") == "counter":
            out[key] = entry.get("value", 0)
    return out


def _metrics_telemetry_mismatches(
    snapshot: Dict[str, Any],
    shard_raw: Dict[str, List[Dict[str, Any]]],
    final: bool,
) -> List[str]:
    """Cross-check a snapshot's telemetry series against the shards.

    Stable totals are ingested only after the matching record is
    durable, so every snapshot must stay at-or-below the shard-derived
    totals, and the run's *final* snapshot must equal them exactly.
    """
    problems: List[str] = []
    for condition in sorted(shard_raw):
        survivors: Dict[str, Dict[str, Any]] = {}
        for record in shard_raw[condition]:
            survivors[record["domain"]] = record["measurement"]
        for counter in sorted(runmetrics.TELEMETRY_SERIES):
            series = runmetrics.TELEMETRY_SERIES[counter]
            expected = sum(
                measurement[counter]
                for measurement in survivors.values()
                if isinstance(measurement.get(counter), int)
            )
            value = runmetrics.series_value(
                snapshot, series, condition=condition
            )
            value = value if isinstance(value, (int, float)) else 0
            if final and value != expected:
                problems.append(
                    "%s[%s]=%s != shard total %d"
                    % (series, condition, value, expected)
                )
            elif not final and value > expected:
                problems.append(
                    "%s[%s]=%s > shard total %d"
                    % (series, condition, value, expected)
                )
    return problems


def fsck_report(run_dir: str, repair: bool = False) -> Dict[str, Any]:
    """Integrity check of a survey run directory, structured.

    Returns ``{"run_dir", "ok", "problems", "checks", "repairs"}``
    where ``checks`` is a list of ``{"ok", "text"}`` entries and
    ``repairs`` the actions a ``repair=True`` pass performed
    (``{"action", "path", ...}``).

    Read-only by default — a torn trailing write is flagged as
    recoverable but not truncated (resume repairs it); ``ok`` is False
    for *any* damage: torn tails, orphan ``*.tmp`` crash litter, a
    stale or live run lock, an unreadable or incomplete manifest,
    mid-shard corruption, records in the wrong shard, malformed
    records, a bad quarantine file, or a ``survey.json`` inconsistent
    with the manifest it sits next to.

    With ``repair=True`` the recoverable classes are fixed offline —
    the same fixes resume applies, usable without the original corpus
    and configuration: torn tails truncated, orphan tmps removed (a
    complete tmp whose target is missing is rolled *forward* instead,
    finishing the interrupted rename), stale locks reclaimed, and a
    result file that disagrees with its manifest removed (it is
    derived data; resume regenerates it).  Repaired findings do not
    count as problems, so ``ok`` answers "is the directory clean
    *now*".  A live lock and mid-shard corruption are never repaired.
    """
    checks: List[Dict[str, Any]] = []
    repairs: List[Dict[str, Any]] = []
    problems = 0

    def report(ok: bool, text: str) -> None:
        nonlocal problems
        if not ok:
            problems += 1
        checks.append({"ok": ok, "text": text})

    def fixed(action: str, path: str, text: str, **extra: Any) -> None:
        repairs.append(dict({"action": action, "path": path}, **extra))
        checks.append({"ok": True, "text": text, "repaired": True})

    def done() -> Dict[str, Any]:
        return {
            "run_dir": run_dir,
            "ok": problems == 0,
            "problems": problems,
            "checks": checks,
            "repairs": repairs,
        }

    if not os.path.isdir(run_dir):
        report(False, "%s: not a directory" % run_dir)
        return done()

    # 0. Run lock: a live holder means the directory is mid-write and
    #    nothing below can be trusted; a stale one is crash litter.
    lock_path = os.path.join(run_dir, LOCK_NAME)
    if os.path.exists(lock_path):
        holder = read_lock(lock_path)
        pid = holder.get("pid") if holder else None
        if isinstance(pid, int) and pid_alive(pid):
            report(False, "%s: held by live process %d — a crawl is "
                   "in progress; results below may be mid-write"
                   % (LOCK_NAME, pid))
        elif repair:
            try:
                os.unlink(lock_path)
                fixed("remove-stale-lock", LOCK_NAME,
                      "%s: stale lock from dead process %s "
                      "(repaired: removed)" % (LOCK_NAME, pid))
            except OSError as error:
                report(False, "%s: stale lock could not be removed "
                       "(%s)" % (LOCK_NAME, error))
        else:
            report(False, "%s: stale lock from dead process %s "
                   "(recoverable; resume reclaims it, fsck --repair "
                   "removes it)" % (LOCK_NAME, pid))

    # 0b. Orphan *.tmp crash litter from interrupted write-then-rename.
    #     With repair: a complete tmp whose target is missing finishes
    #     its rename (the fsync already made it durable); every other
    #     tmp is discarded — the renamed file is the authoritative
    #     state.
    for name in orphan_tmp_files(run_dir):
        tmp_path = os.path.join(run_dir, name)
        target = name[: -len(".tmp")]
        target_path = os.path.join(run_dir, target)
        if not repair:
            report(False, "%s: orphan temporary file (crash litter; "
                   "recoverable — resume or fsck --repair cleans it)"
                   % name)
            continue
        payload = None
        if not os.path.exists(target_path):
            try:
                with open(tmp_path, encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                payload = None
        try:
            if payload is not None:
                os.replace(tmp_path, target_path)
                fixed("complete-interrupted-replace", name,
                      "%s: interrupted rename completed (repaired: "
                      "now %s)" % (name, target))
            else:
                os.unlink(tmp_path)
                fixed("remove-orphan-tmp", name,
                      "%s: orphan temporary file (repaired: removed)"
                      % name)
        except OSError as error:
            report(False, "%s: orphan temporary file could not be "
                   "cleaned (%s)" % (name, error))

    # 0c. Nothing at all (a crash before the manifest ever landed,
    #     after repair swept the litter): not a checkpoint, not damage.
    try:
        remaining = [
            n for n in os.listdir(run_dir)
            if n != LOCK_NAME and not n.endswith(".tmp")
        ]
    except OSError:
        remaining = []
    if not remaining and not os.path.exists(
        os.path.join(run_dir, MANIFEST_NAME)
    ):
        report(True, "empty directory: no checkpoint yet "
               "(nothing to verify)")
        return done()

    # 1. Manifest: readable, right version, complete.
    manifest: Optional[Dict[str, Any]] = None
    manifest_path = os.path.join(run_dir, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        report(False, "%s: missing" % MANIFEST_NAME)
    else:
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            report(False, "%s: unreadable (%s)" % (MANIFEST_NAME, error))
        if manifest is not None:
            missing = [k for k in _MANIFEST_REQUIRED if k not in manifest]
            if manifest.get("checkpoint_version") != CHECKPOINT_VERSION:
                report(False, "%s: unsupported version %r" % (
                    MANIFEST_NAME, manifest.get("checkpoint_version")))
                manifest = None
            elif missing:
                report(False, "%s: missing keys %s" % (
                    MANIFEST_NAME, ", ".join(missing)))
                manifest = None
            else:
                report(True, "%s: version %d, %d condition(s), %d domains"
                       % (MANIFEST_NAME, CHECKPOINT_VERSION,
                          len(manifest["conditions"]),
                          manifest["n_domains"]))

    # 2. Shards: per-condition, last-line-torn is recoverable, anything
    #    else is corruption.
    conditions = list(manifest["conditions"]) if manifest else []
    shard_records: Dict[str, int] = {}
    shard_raw: Dict[str, List[Dict[str, Any]]] = {}
    for condition in conditions:
        name = shard_name(condition)
        path = os.path.join(run_dir, name)
        if not os.path.exists(path):
            report(True, "%s: not started (no records yet)" % name)
            continue
        try:
            records, dropped = load_shard_records(path, repair=False)
        except CheckpointError as error:
            report(False, "%s: %s" % (name, error))
            continue
        bad = 0
        for record in records:
            if record["condition"] != condition:
                bad += 1
                continue
            measurement = record["measurement"]
            if any(k not in measurement for k in _MEASUREMENT_REQUIRED):
                bad += 1
                continue
            # Telemetry counters, when present, must be sane: each is
            # a non-negative integer (the canonical schema the reports
            # and the trace command read).
            if any(
                not isinstance(measurement[counter], int)
                or measurement[counter] < 0
                for counter in TELEMETRY_COUNTERS
                if counter in measurement
            ):
                bad += 1
        if bad:
            report(False, "%s: %d malformed record(s)" % (name, bad))
            continue
        shard_records[condition] = len(records)
        shard_raw[condition] = records
        if dropped and repair:
            load_shard_records(path, repair=True)
            fixed("truncate-torn-tail", name,
                  "%s: %d record(s), torn trailing write (repaired: "
                  "tail truncated)" % (name, len(records)),
                  records_kept=len(records))
        elif dropped:
            report(False, "%s: %d record(s), torn trailing write "
                   "(recoverable; resume repairs it)"
                   % (name, len(records)))
        else:
            report(True, "%s: %d record(s)" % (name, len(records)))
    # Stray shards for conditions the manifest does not know about.
    if manifest is not None:
        known = {shard_name(c) for c in conditions}
        for name in sorted(os.listdir(run_dir)):
            if (name.startswith("shard-") and name.endswith(".jsonl")
                    and name not in known):
                report(False, "%s: shard for unknown condition" % name)

    # 2b. Trace shards (present only for --trace runs): well-formed
    #     span trees, torn-tail recoverable.  An orphan trace (trace
    #     recorded, crash before the measurement landed) is benign —
    #     resume re-records it last-wins — so counts need not match
    #     the measurement shard's.
    for condition in conditions:
        name = trace_shard_name(condition)
        path = os.path.join(run_dir, name)
        if not os.path.exists(path):
            continue
        try:
            records, dropped = load_shard_records(
                path, repair=False, payload_key="trace"
            )
        except CheckpointError as error:
            report(False, "%s: %s" % (name, error))
            continue
        bad = sum(
            1 for record in records
            if record["condition"] != condition
            or not isinstance(record["trace"].get("name"), str)
        )
        if bad:
            report(False, "%s: %d malformed trace(s)" % (name, bad))
        elif dropped and repair:
            load_shard_records(path, repair=True, payload_key="trace")
            fixed("truncate-torn-tail", name,
                  "%s: %d trace(s), torn trailing write (repaired: "
                  "tail truncated)" % (name, len(records)),
                  records_kept=len(records))
        elif dropped:
            report(False, "%s: %d trace(s), torn trailing write "
                   "(recoverable; resume repairs it)"
                   % (name, len(records)))
        else:
            report(True, "%s: %d trace(s)" % (name, len(records)))
    if manifest is not None:
        known_traces = {trace_shard_name(c) for c in conditions}
        for name in sorted(os.listdir(run_dir)):
            if (name.startswith("trace-") and name.endswith(".jsonl")
                    and name not in known_traces):
                report(False,
                       "%s: trace shard for unknown condition" % name)

    # 2c. Lease fencing.  When the supervisor fenced dispatches with
    #     lease epochs, a site that appears more than once in a shard
    #     must resolve to exactly one survivor — the *last* record,
    #     append-only semantics — and that survivor must carry the
    #     highest epoch written for the site.  A stale-epoch survivor
    #     means a replaced worker's late result landed after (and so
    #     shadowed) its successor's: exactly the double-write fencing
    #     exists to prevent.  Epochs must also never exceed what
    #     leases.json says was issued.
    leases_path = os.path.join(run_dir, LEASES_NAME)
    issued: Optional[Dict[str, Dict[str, int]]] = None
    if os.path.exists(leases_path):
        try:
            with open(leases_path, encoding="utf-8") as handle:
                data = json.load(handle)
            table = data.get("leases")
            if not isinstance(table, dict) or not all(
                isinstance(condition, str)
                and isinstance(by_domain, dict)
                and all(
                    isinstance(domain, str)
                    and isinstance(epoch, int) and epoch > 0
                    for domain, epoch in by_domain.items()
                )
                for condition, by_domain in table.items()
            ):
                raise ValueError("no valid leases table")
            issued = table
            report(True, "%s: %d lease(s) issued" % (
                LEASES_NAME,
                sum(len(by_domain) for by_domain in table.values())))
        except (OSError, ValueError) as error:
            report(False, "%s: unreadable (%s)" % (LEASES_NAME, error))
    for condition in conditions:
        records = shard_raw.get(condition)
        if not records:
            continue
        fenced = any("lease_epoch" in record for record in records)
        if not fenced and issued is None:
            continue  # unfenced run: nothing to validate
        name = shard_name(condition)
        by_domain: Dict[str, List[Dict[str, Any]]] = {}
        for record in records:
            by_domain.setdefault(record["domain"], []).append(record)
        bad_epochs = 0
        stale_survivors = []
        over_issued = []
        duplicated = 0
        for domain, row in by_domain.items():
            epochs = []
            for record in row:
                if "lease_epoch" not in record:
                    continue
                epoch = record["lease_epoch"]
                if not isinstance(epoch, int) or epoch < 1:
                    bad_epochs += 1
                else:
                    epochs.append(epoch)
            if len(row) > 1:
                duplicated += 1
                if epochs:
                    survivor = row[-1].get("lease_epoch")
                    if survivor != max(epochs):
                        stale_survivors.append(domain)
            if issued is not None and epochs:
                cap = issued.get(condition, {}).get(domain, 0)
                if max(epochs) > cap:
                    over_issued.append(domain)
        if bad_epochs:
            report(False, "%s: %d record(s) with a malformed "
                   "lease_epoch" % (name, bad_epochs))
        if stale_survivors:
            report(False, "%s: stale lease epoch survives for %s — a "
                   "replaced worker's late result shadowed the "
                   "re-leased one" % (name, ", ".join(sorted(
                       stale_survivors))))
        if over_issued:
            report(False, "%s: records for %s carry lease epochs "
                   "never issued per %s" % (name, ", ".join(sorted(
                       over_issued)), LEASES_NAME))
        if not (bad_epochs or stale_survivors or over_issued):
            report(True, "%s: lease epochs consistent "
                   "(%d re-leased site(s), last record carries the "
                   "highest epoch)" % (name, duplicated))

    # 2d. Metrics time series (present only for metrics-on runs).
    #     Snapshots are append-only registry dumps: a torn tail is
    #     recoverable, sequence numbers must be unique and increasing
    #     (a duplicated seq means a resumed run restarted the cursor),
    #     stable counters may never decrease across snapshots, and the
    #     telemetry series in the last snapshot must agree with the
    #     totals the measurement shards imply — equal for a final
    #     snapshot, never above for an intermediate one (stable totals
    #     are ingested only after the site's record is durable).
    metrics_path = os.path.join(run_dir, METRICS_NAME)
    if os.path.exists(metrics_path):
        metric_records: List[Dict[str, Any]] = []
        readable = True
        try:
            metric_records, dropped = load_metrics_records(metrics_path)
        except CheckpointError as error:
            report(False, "%s: %s" % (METRICS_NAME, error))
            readable = False
        if readable:
            if dropped and repair:
                load_metrics_records(metrics_path, repair=True)
                fixed("truncate-torn-tail", METRICS_NAME,
                      "%s: %d snapshot(s), torn trailing write "
                      "(repaired: tail truncated)"
                      % (METRICS_NAME, len(metric_records)),
                      records_kept=len(metric_records))
            elif dropped:
                report(False, "%s: %d snapshot(s), torn trailing "
                       "write (recoverable; resume repairs it)"
                       % (METRICS_NAME, len(metric_records)))
            else:
                report(True, "%s: %d snapshot(s)"
                       % (METRICS_NAME, len(metric_records)))
        if metric_records:
            seqs = [record["seq"] for record in metric_records]
            if len(set(seqs)) != len(seqs):
                report(False, "%s: duplicated snapshot seq(s) — a "
                       "resumed run restarted the snapshot cursor"
                       % METRICS_NAME)
            elif seqs != sorted(seqs):
                report(False, "%s: snapshot seqs out of order"
                       % METRICS_NAME)
            ordered = sorted(metric_records, key=lambda r: r["seq"])
            regressions = []
            previous: Dict[Any, Any] = {}
            for record in ordered:
                current = _stable_counter_values(record["metrics"])
                for key, before in previous.items():
                    after = current.get(key)
                    if after is not None and after < before:
                        regressions.append("%s seq %d" % (
                            key[0], record["seq"]))
                previous.update(current)
            if regressions:
                report(False, "%s: stable counter decreased across "
                       "snapshots (%s)" % (
                           METRICS_NAME,
                           ", ".join(sorted(set(regressions))[:5])))
            else:
                report(True, "%s: stable counters monotonic across "
                       "%d snapshot(s)"
                       % (METRICS_NAME, len(metric_records)))
            if shard_raw:
                last = ordered[-1]
                mismatches = _metrics_telemetry_mismatches(
                    last["metrics"], shard_raw,
                    final=last.get("kind") == "final",
                )
                if mismatches:
                    report(False, "%s: telemetry series disagree with "
                           "the measurement shards (%s)" % (
                               METRICS_NAME,
                               "; ".join(mismatches[:5])))
                else:
                    report(True, "%s: telemetry series consistent "
                           "with the measurement shards (%s snapshot)"
                           % (METRICS_NAME,
                              last.get("kind", "snapshot")))

    # 3. Quarantine strike table (optional file).
    quarantine_path = os.path.join(run_dir, QUARANTINE_NAME)
    if os.path.exists(quarantine_path):
        try:
            with open(quarantine_path, encoding="utf-8") as handle:
                data = json.load(handle)
            strikes = data.get("strikes")
            if not isinstance(strikes, dict) or not all(
                isinstance(d, str) and isinstance(n, int)
                for d, n in strikes.items()
            ):
                raise ValueError("no valid strikes table")
            report(True, "%s: %d quarantine strike(s)"
                   % (QUARANTINE_NAME, sum(strikes.values())))
        except (OSError, ValueError) as error:
            report(False, "%s: unreadable (%s)"
                   % (QUARANTINE_NAME, error))

    # 4. Final survey.json, when present, must agree with the manifest
    #    it sits next to (same registry, conditions and domain list).
    result_path = os.path.join(run_dir, RESULT_NAME)
    if os.path.exists(result_path) and manifest is not None:
        try:
            with open(result_path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            report(False, "%s: unreadable (%s)" % (RESULT_NAME, error))
        else:
            mismatches = []
            if (data.get("registry_fingerprint")
                    != manifest["registry_fingerprint"]):
                mismatches.append("registry_fingerprint")
            if list(data.get("conditions", [])) != conditions:
                mismatches.append("conditions")
            if (domains_digest(data.get("domains", []))
                    != manifest["domains_digest"]):
                mismatches.append("domains_digest")
            if mismatches and repair:
                try:
                    os.unlink(result_path)
                    fixed("remove-stale-result", RESULT_NAME,
                          "%s: disagrees with manifest on %s "
                          "(repaired: removed — derived data, resume "
                          "regenerates it)"
                          % (RESULT_NAME, ", ".join(mismatches)),
                          mismatches=mismatches)
                except OSError as error:
                    report(False, "%s: disagrees with manifest and "
                           "could not be removed (%s)"
                           % (RESULT_NAME, error))
            elif mismatches:
                report(False, "%s: disagrees with manifest on %s"
                       % (RESULT_NAME, ", ".join(mismatches)))
            else:
                report(True, "%s: consistent with manifest" % RESULT_NAME)

    return done()


def fsck_lines(result: Dict[str, Any]) -> List[str]:
    """Flatten an :func:`fsck_report` result into the classic
    ``ok``/``BAD``-prefixed report lines plus a summary line."""
    lines = [
        "%s %s" % ("ok " if check["ok"] else "BAD", check["text"])
        for check in result["checks"]
    ]
    problems = result["problems"]
    lines.append(
        "%s: %s" % (result["run_dir"],
                    "clean" if not problems
                    else "%d problem(s) found" % problems)
    )
    return lines


def fsck_run_dir(
    run_dir: str, repair: bool = False
) -> Tuple[bool, List[str]]:
    """Line-oriented wrapper over :func:`fsck_report` — returns
    ``(ok, report_lines)`` exactly as the original read-only fsck did.
    """
    result = fsck_report(run_dir, repair=repair)
    return result["ok"], fsck_lines(result)

"""CSV export of every analysis — plot-ready data.

Measurement papers ship their data; so does this reproduction.  Each
function returns CSV text for one table/figure, and
:func:`export_all` writes the full set to a directory, ready for any
external plotting tool.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Callable, Dict, List, Optional, Sequence

from repro.core import analysis, metrics
from repro.core.survey import SurveyResult
from repro.core.validation import (
    ExternalValidationOutcome,
    internal_validation,
)


def _csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


def figure1_csv() -> str:
    points = analysis.figure1_browser_evolution()
    return _csv(
        ("year", "browser", "million_loc", "web_standards"),
        [(p.year, p.browser, p.million_loc, p.web_standards)
         for p in points],
    )


def table1_csv(result: SurveyResult) -> str:
    summary = analysis.table1_crawl_summary(result)
    return _csv(
        ("quantity", "value"),
        [
            ("domains_measured", summary.domains_measured),
            ("domains_failed", summary.domains_failed),
            ("pages_visited", summary.pages_visited),
            ("interaction_seconds", summary.interaction_seconds),
            ("feature_invocations", summary.feature_invocations),
        ],
    )


def figure3_csv(result: SurveyResult) -> str:
    points = analysis.figure3_standard_popularity_cdf(result)
    return _csv(
        ("sites_using_standard", "portion_of_standards"),
        [(sites, "%.6f" % fraction) for sites, fraction in points],
    )


def figure4_csv(result: SurveyResult) -> str:
    points = analysis.figure4_popularity_vs_block_rate(result)
    return _csv(
        ("standard", "sites", "block_rate"),
        [
            (p.abbrev, p.sites,
             "" if p.block_rate is None else "%.6f" % p.block_rate)
            for p in points
        ],
    )


def figure5_csv(result: SurveyResult) -> str:
    points = analysis.figure5_site_vs_traffic_popularity(result)
    return _csv(
        ("standard", "site_fraction", "visit_fraction"),
        [
            (p.abbrev, "%.6f" % p.site_fraction, "%.6f" % p.visit_fraction)
            for p in points
        ],
    )


def figure6_csv(result: SurveyResult) -> str:
    points = analysis.figure6_age_vs_popularity(result)
    return _csv(
        ("standard", "introduced", "sites", "block_band"),
        [
            (p.abbrev, p.introduced.isoformat(), p.sites, p.block_band)
            for p in points
        ],
    )


def figure7_csv(result: SurveyResult) -> str:
    points = analysis.figure7_ad_vs_tracking_block(result)
    return _csv(
        ("standard", "sites", "ad_block_rate", "tracking_block_rate"),
        [
            (
                p.abbrev,
                p.sites,
                "" if p.ad_block_rate is None else "%.6f" % p.ad_block_rate,
                "" if p.tracking_block_rate is None
                else "%.6f" % p.tracking_block_rate,
            )
            for p in points
        ],
    )


def table2_csv(result: SurveyResult) -> str:
    rows = analysis.table2_standard_summary(result)
    return _csv(
        ("standard_name", "abbrev", "features", "sites", "block_rate",
         "cves"),
        [
            (
                row.name, row.abbrev, row.features, row.sites,
                "" if row.block_rate is None else "%.6f" % row.block_rate,
                row.cves,
            )
            for row in rows
        ],
    )


def figure8_csv(result: SurveyResult) -> str:
    pdf = analysis.figure8_site_complexity_pdf(result)
    return _csv(
        ("standards_used", "portion_of_sites"),
        [(count, "%.6f" % fraction) for count, fraction in pdf.items()],
    )


def table3_csv(result: SurveyResult) -> str:
    rows = internal_validation(result)
    return _csv(
        ("round", "avg_new_standards"),
        [(round_index, "%.4f" % value) for round_index, value in rows],
    )


def figure9_csv(outcome: ExternalValidationOutcome) -> str:
    return _csv(
        ("new_standards_observed", "domains"),
        list(outcome.histogram.items()),
    )


def features_csv(result: SurveyResult) -> str:
    """The full per-feature dataset: popularity + block rate."""
    counts = metrics.feature_site_counts(result, "default")
    rates = (
        metrics.feature_block_rates(result)
        if "blocking" in result.conditions else {}
    )
    registry = result.registry
    rows = []
    for feature in registry.features():
        rate = rates.get(feature.name)
        rows.append(
            (
                feature.name,
                feature.standard,
                feature.kind,
                counts.get(feature.name, 0),
                "" if rate is None else "%.6f" % rate,
            )
        )
    return _csv(
        ("feature", "standard", "kind", "sites", "block_rate"), rows
    )


def export_all(
    result: SurveyResult,
    out_dir: str,
    external: Optional[ExternalValidationOutcome] = None,
) -> Dict[str, str]:
    """Write every exportable dataset to ``out_dir``; returns paths."""
    os.makedirs(out_dir, exist_ok=True)
    exports: Dict[str, str] = {
        "figure1": figure1_csv(),
        "table1": table1_csv(result),
        "figure3": figure3_csv(result),
        "figure4": figure4_csv(result),
        "figure5": figure5_csv(result),
        "figure6": figure6_csv(result),
        "table2": table2_csv(result),
        "figure8": figure8_csv(result),
        "table3": table3_csv(result),
        "features": features_csv(result),
    }
    try:
        exports["figure7"] = figure7_csv(result)
    except ValueError:
        pass
    if external is not None:
        exports["figure9"] = figure9_csv(external)
    paths: Dict[str, str] = {}
    for name, text in exports.items():
        path = os.path.join(out_dir, "%s.csv" % name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        paths[name] = path
    return paths

"""Site isolation: hierarchical per-visit resource budgets.

The paper could not measure 267 of the Alexa 10k because real sites
hang, crash and misbehave.  The only guard the engine itself offers is
MiniJS's per-*script* step budget; a hostile site can still stall a
crawl worker with runaway timers, unbounded DOM growth, deep recursion
or fetch storms — none of which any single script's step count sees.

This module is the budget layer the rest of the pipeline threads
through (``run_survey`` → ``Browser`` → interpreter/DOM/fetcher):

* :class:`ResourceBudget` — immutable limits for one site visit round:
  a wall-clock deadline spanning every phase (fetch/parse/execute/
  monkey), a MiniJS allocation budget (objects + string bytes), a
  recursion-depth cap below the engine's own, a DOM-node cap, a
  per-page fetch cap, and a whole-round step budget on top of the
  per-script one.
* :class:`BudgetMeter` — the mutable per-round counters.  Every
  exhaustion raises a typed :class:`BudgetExceeded` subclass carrying a
  structured ``cause`` slug plus the used/limit pair the failure report
  turns into per-cause headroom.
* :class:`VirtualClock` — an injectable deterministic clock: it
  advances only on *counted* events (interpreter steps, fetches, timer
  jumps), so deadline-limited runs are bit-identical across start
  methods and machines.  Production runs keep the default
  ``time.perf_counter``.

Deliberately **not** a :class:`~repro.minijs.errors.MiniJSError`:
page ``try``/``catch`` must never swallow a budget exhaustion, and the
browser's per-script error handling must not either — a blown budget
aborts the whole visit into a *partial* measurement (features counted
so far are kept), never a silently mis-measured one.

The module also hosts the crawl watchdog's heartbeat hook: worker
processes register a callback with :func:`set_heartbeat`, and the
fetcher/crawler call :func:`heartbeat` at phase boundaries so the
supervisor can tell a slow-but-alive worker from a hung one.

This module imports nothing from the rest of the package, so every
layer (including :mod:`repro.minijs`) can depend on it without cycles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

#: Structured cause slug for sites removed by the crawl supervisor
#: after repeatedly killing or hanging workers (no exception type: the
#: poison verdict is reached in the parent, not raised in a worker).
QUARANTINE_CAUSE = "quarantined"

#: Structured cause slug for visits cut short because the worker
#: process crossed its RSS ceiling (see :class:`MemoryGovernor`).
MEMORY_PRESSURE_CAUSE = "memory-pressure"

#: How often (in meter ticks) the deadline is re-checked mid-script.
#: A power of two minus one: the check is a single AND per tick.
_DEADLINE_CHECK_MASK = 2047


class BudgetExceeded(Exception):
    """A site visit exhausted one of its resource budgets.

    Subclasses pin a structured ``cause`` slug; ``used``/``limit``
    quantify the exhaustion (``overshoot`` is their ratio) so the
    failure report can show per-cause headroom.  Intentionally not a
    ``MiniJSError``: page scripts cannot catch it, and the browser's
    per-script error recovery lets it abort the visit.
    """

    cause = "budget"

    def __init__(self, detail: str, limit: float, used: float) -> None:
        super().__init__(detail)
        self.limit = limit
        self.used = used

    @property
    def overshoot(self) -> float:
        """How far past the limit the site got (1.0 = exactly at it)."""
        if self.limit <= 0:
            return 0.0
        return self.used / self.limit

    @property
    def failure_reason(self) -> str:
        """The structured cause string recorded on the measurement."""
        return "budget:%s: %s" % (self.cause, self.args[0])


class DeadlineExceeded(BudgetExceeded):
    """The visit's wall-clock deadline passed (spanning all phases)."""

    cause = "deadline"


class ScriptBudgetExceeded(BudgetExceeded):
    """The whole-round step budget ran out (across every script)."""

    cause = "steps"


class AllocationBudgetExceeded(BudgetExceeded):
    """The MiniJS allocation budget (objects + string bytes) ran out."""

    cause = "allocation"


class RecursionBudgetExceeded(BudgetExceeded):
    """Call depth passed the budget's cap (below the engine's own)."""

    cause = "recursion"


class DomBudgetExceeded(BudgetExceeded):
    """The page grew the DOM past the node cap."""

    cause = "dom-nodes"


class FetchBudgetExceeded(BudgetExceeded):
    """One page issued more requests than the per-page fetch cap."""

    cause = "fetches"


class MemoryPressure(BudgetExceeded):
    """The worker process crossed its RSS ceiling mid-visit.

    Raised at a *page boundary* by the crawler when the installed
    :class:`MemoryGovernor` has latched: the in-flight page finishes,
    the visit degrades into a partial measurement carrying this cause,
    and the worker recycles itself (``ru_maxrss`` is a high-water mark
    — only a fresh process can shed it).
    """

    cause = MEMORY_PRESSURE_CAUSE

    @property
    def failure_reason(self) -> str:
        # Not a "budget:" cause — the limit is on the host process,
        # not the visit, and the failure report groups it separately.
        return "%s: %s" % (MEMORY_PRESSURE_CAUSE, self.args[0])


class VirtualClock:
    """A deterministic clock driven by counted work, not the OS.

    Reads return accumulated virtual seconds; the meter advances it per
    interpreter step and per fetch, and the DOM realm credits timer
    jumps (a page napping via ``setTimeout(fn, 3600000)`` burns an hour
    of virtual deadline in one flush).  Two runs that execute the same
    work therefore read the same clock — the property the bit-identity
    acceptance test leans on.
    """

    def __init__(
        self,
        seconds_per_step: float = 0.0,
        seconds_per_fetch: float = 0.0,
    ) -> None:
        self.seconds_per_step = seconds_per_step
        self.seconds_per_fetch = seconds_per_fetch
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        if seconds > 0:
            self.now += seconds

    def __call__(self) -> float:
        return self.now

    def __reduce__(self):
        # Spawn-started workers rebuild the clock from its rates; the
        # accumulated reading is per-visit state that must start at 0.
        return (
            VirtualClock,
            (self.seconds_per_step, self.seconds_per_fetch),
        )


@dataclass(frozen=True)
class ResourceBudget:
    """Immutable per-site-visit resource limits (None = unlimited).

    The default instance enforces nothing, so the ordinary crawl pays
    no budget overhead; chaos and production runs opt in per limit.
    """

    #: wall-clock seconds per visit round, spanning every phase
    deadline_seconds: Optional[float] = None
    #: interpreter steps per visit round, across all scripts/handlers
    #: (the per-script ``step_limit`` still applies underneath)
    max_steps: Optional[int] = None
    #: MiniJS objects/arrays/functions allocated per visit round
    max_allocations: Optional[int] = None
    #: bytes of string built by concatenation per visit round
    max_string_bytes: Optional[int] = None
    #: call depth cap; must sit below the engine's own (catchable) one
    #: to fire first
    max_call_depth: Optional[int] = None
    #: DOM nodes attached per visit round (parsing + script growth)
    max_dom_nodes: Optional[int] = None
    #: requests issued per page (documents, scripts, images, XHR...)
    max_fetches_per_page: Optional[int] = None
    #: clock the deadline reads; ``time.perf_counter`` in production,
    #: a :class:`VirtualClock` for deterministic budget-limited runs
    clock: Callable[[], float] = field(default=time.perf_counter)

    @property
    def limited(self) -> bool:
        """Does this budget enforce anything at all?"""
        return any(
            getattr(self, name) is not None
            for name in self._limit_fields()
        )

    @staticmethod
    def _limit_fields():
        return (
            "deadline_seconds", "max_steps", "max_allocations",
            "max_string_bytes", "max_call_depth", "max_dom_nodes",
            "max_fetches_per_page",
        )

    def fingerprint(self) -> Dict[str, Any]:
        """The limits as a JSON-ready dict (checkpoint manifests).

        The clock is deliberately excluded: it changes *when* a
        deadline fires, never what a completed measurement contains,
        and injected clocks need not be serializable.
        """
        return {
            name: getattr(self, name) for name in self._limit_fields()
        }

    def meter(self) -> "BudgetMeter":
        """A fresh meter for one visit round."""
        return BudgetMeter(self)


class BudgetMeter:
    """Mutable per-visit-round counters enforcing a ResourceBudget.

    One meter spans one full visit round — every page, every phase —
    which is what makes the deadline and the allocation/step/DOM caps
    *site-level* guards rather than per-script ones.  The per-page
    fetch counter alone resets at :meth:`begin_page`.

    The first exhaustion is remembered in :attr:`exceeded` so callers
    that caught the raise far away can still report used/limit.
    """

    def __init__(self, budget: ResourceBudget) -> None:
        self.budget = budget
        self.total_steps = 0
        self.allocations = 0
        self.string_bytes = 0
        self.dom_nodes = 0
        self.page_fetches = 0
        self.pages_started = 0
        self.exceeded: Optional[BudgetExceeded] = None
        clock = budget.clock
        self._vclock = clock if isinstance(clock, VirtualClock) else None
        if self._vclock is not None:
            # Rewind: virtual time is per-visit-round state.  Starting
            # every round at 0.0 makes its float arithmetic identical
            # whatever ran before, so budget-limited measurements are
            # bit-identical serial vs parallel vs resumed (a shared
            # accumulating clock differs from a fresh worker's in the
            # last ulp of ``elapsed``).
            self._vclock.now = 0.0
        self._started = clock()

    # -- time ----------------------------------------------------------------

    def virtual_clock(self) -> Optional[VirtualClock]:
        """The meter's deterministic clock, or None on a real clock.

        Tracing stamps span timestamps from this clock only — virtual
        time restarts at 0.0 every visit round, so the stamps are
        bit-identical across start methods and resume boundaries.
        """
        return self._vclock

    def elapsed(self) -> float:
        return self.budget.clock() - self._started

    def check_deadline(self) -> None:
        deadline = self.budget.deadline_seconds
        if deadline is None:
            return
        elapsed = self.elapsed()
        if elapsed > deadline:
            self._blow(DeadlineExceeded(
                "visit exceeded its %.3gs deadline (%.3gs elapsed)"
                % (deadline, elapsed),
                limit=deadline, used=elapsed,
            ))

    def advance_clock_ms(self, milliseconds: float) -> None:
        """Credit a virtual-clock jump (timer fast-forwarding).

        Real clocks ignore this — the wall time genuinely passed or it
        didn't; only the injected deterministic clock needs telling
        that a page slept its way through the visit.
        """
        if self._vclock is not None and milliseconds > 0:
            self._vclock.advance(milliseconds / 1000.0)

    # -- interpreter ---------------------------------------------------------

    def tick(self) -> None:
        """One interpreter step (the hot path — keep it a few ops)."""
        self.total_steps += 1
        vclock = self._vclock
        if vclock is not None and vclock.seconds_per_step:
            vclock.advance(vclock.seconds_per_step)
        limit = self.budget.max_steps
        if limit is not None and self.total_steps > limit:
            self._blow(ScriptBudgetExceeded(
                "visit exceeded its %d-step budget across all scripts"
                % limit,
                limit=limit, used=self.total_steps,
            ))
        if (self.total_steps & _DEADLINE_CHECK_MASK) == 0:
            self.check_deadline()
            heartbeat()

    def charge_allocation(self, count: int = 1) -> None:
        self.allocations += count
        hook = _ALLOC_HOOK
        if hook is not None:
            hook(self.allocations)
        limit = self.budget.max_allocations
        if limit is not None and self.allocations > limit:
            self._blow(AllocationBudgetExceeded(
                "visit allocated more than %d MiniJS objects" % limit,
                limit=limit, used=self.allocations,
            ))

    def charge_string_bytes(self, nbytes: int) -> None:
        self.string_bytes += nbytes
        limit = self.budget.max_string_bytes
        if limit is not None and self.string_bytes > limit:
            self._blow(AllocationBudgetExceeded(
                "visit built more than %d bytes of string" % limit,
                limit=limit, used=self.string_bytes,
            ))

    def check_depth(self, depth: int) -> None:
        limit = self.budget.max_call_depth
        if limit is not None and depth > limit:
            self._blow(RecursionBudgetExceeded(
                "visit recursed past the %d-frame budget" % limit,
                limit=limit, used=depth,
            ))

    # -- DOM -----------------------------------------------------------------

    def charge_dom_node(self, count: int = 1) -> None:
        self.dom_nodes += count
        limit = self.budget.max_dom_nodes
        if limit is not None and self.dom_nodes > limit:
            self._blow(DomBudgetExceeded(
                "visit grew the DOM past %d nodes" % limit,
                limit=limit, used=self.dom_nodes,
            ))

    # -- network / pages -----------------------------------------------------

    def begin_page(self) -> None:
        """A new page starts: fresh fetch allowance, deadline check."""
        self.pages_started += 1
        self.page_fetches = 0
        heartbeat()
        self.check_deadline()

    def charge_fetch(self) -> None:
        self.page_fetches += 1
        vclock = self._vclock
        if vclock is not None and vclock.seconds_per_fetch:
            vclock.advance(vclock.seconds_per_fetch)
        limit = self.budget.max_fetches_per_page
        if limit is not None and self.page_fetches > limit:
            self._blow(FetchBudgetExceeded(
                "page issued more than %d requests" % limit,
                limit=limit, used=self.page_fetches,
            ))
        self.check_deadline()

    # ------------------------------------------------------------------------

    def _blow(self, error: BudgetExceeded) -> None:
        if self.exceeded is None:
            self.exceeded = error
        raise error


# -- watchdog heartbeats -----------------------------------------------------

#: Process-global heartbeat sink.  ``None`` (the default, and always in
#: serial crawls) makes :func:`heartbeat` a no-op; parallel crawl
#: workers register a callback that stamps their slot in the
#: supervisor's shared heartbeat array.
_HEARTBEAT: Optional[Callable[[], None]] = None


def set_heartbeat(fn: Optional[Callable[[], None]]) -> None:
    """Install (or clear) the process's watchdog heartbeat callback."""
    global _HEARTBEAT
    _HEARTBEAT = fn


def heartbeat() -> None:
    """Signal liveness to the crawl supervisor, if one is listening.

    Called from the fetcher (before touching the network — the one
    place a hostile web can genuinely block) and from the crawler at
    page boundaries, so a worker grinding through a slow-but-legal site
    keeps its heartbeat fresh while a hung one goes stale.

    The beat doubles as the memory governor's polling point: RSS is
    re-probed on the same cadence liveness is signalled, so pressure is
    noticed without a dedicated thread or timer.
    """
    fn = _HEARTBEAT
    if fn is not None:
        fn()
    governor = _MEMORY_GOVERNOR
    if governor is not None:
        governor.poll()


# -- memory-pressure governance -----------------------------------------------


def _default_rss_probe() -> float:
    """Current process high-water RSS in MB (0.0 if unknowable).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are a
    high-water mark, which is exactly what the governor wants — a
    worker that ever ballooned must recycle even if the allocator gave
    pages back.
    """
    try:
        import resource
    except ImportError:  # non-POSIX: govern nothing rather than crash
        return 0.0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    import sys
    if sys.platform == "darwin":
        return rss / (1024.0 * 1024.0)
    return rss / 1024.0


class MemoryGovernor:
    """Per-worker RSS watchdog, polled on the heartbeat.

    The governor never interrupts work itself: :meth:`poll` only
    latches :attr:`pressured` once the probe crosses ``max_rss_mb``.
    The crawler checks the latch at page boundaries and degrades the
    visit gracefully (finish the in-flight page, record a structured
    ``memory-pressure`` cause); the parallel worker then exits so the
    supervisor respawns a fresh process — the high-water mark cannot
    come back down inside this one.
    """

    def __init__(
        self,
        max_rss_mb: float,
        probe: Optional[Callable[[], float]] = None,
    ) -> None:
        self.max_rss_mb = max_rss_mb
        self._probe = probe if probe is not None else _default_rss_probe
        self.pressured = False
        self.rss_mb = 0.0

    def poll(self) -> bool:
        """Re-probe RSS; return (and latch) the pressured verdict."""
        if not self.pressured:
            self.rss_mb = self._probe()
            if self.rss_mb > self.max_rss_mb:
                self.pressured = True
        return self.pressured

    def pressure(self) -> "MemoryPressure":
        """The typed exception describing the latched pressure."""
        return MemoryPressure(
            "worker RSS high-water %.1f MB crossed the %.1f MB ceiling"
            % (self.rss_mb, self.max_rss_mb),
            limit=self.max_rss_mb, used=self.rss_mb,
        )


#: Process-global memory governor.  ``None`` (the default) keeps
#: :func:`heartbeat` free of any RSS probing; parallel workers install
#: one when the survey sets ``max_worker_rss_mb``.
_MEMORY_GOVERNOR: Optional[MemoryGovernor] = None


def set_memory_governor(governor: Optional[MemoryGovernor]) -> None:
    """Install (or clear) the process's memory governor."""
    global _MEMORY_GOVERNOR
    _MEMORY_GOVERNOR = governor


def current_memory_governor() -> Optional[MemoryGovernor]:
    return _MEMORY_GOVERNOR


#: Process-global allocation hook, called from
#: :meth:`BudgetMeter.charge_allocation` with the running allocation
#: count.  Exists for deterministic fault injection: the proc-chaos arm
#: raises a seeded ``MemoryError`` at an exact allocation boundary, the
#: same boundary in every run.  ``None`` (the default) costs one global
#: load per allocation.
_ALLOC_HOOK: Optional[Callable[[int], None]] = None


def set_alloc_hook(fn: Optional[Callable[[int], None]]) -> None:
    """Install (or clear) the allocation-boundary fault hook."""
    global _ALLOC_HOOK
    _ALLOC_HOOK = fn

"""Summarizing trace shards: the ``repro trace <run-dir>`` command.

Reads the ``trace-<condition>.jsonl`` shards a ``--trace`` run left in
its run directory and answers the profiling questions the raw spans
encode:

* where did the wall-clock go? (exclusive real milliseconds per
  ``phase:*`` span, and per origin);
* which sites and pages were slowest? (inclusive span durations);
* what went wrong, when? (retry / breaker / short-circuit / budget /
  quarantine events, with their virtual timestamps);
* the critical path: the chain of slowest spans from the slowest
  site's root down to a leaf.

Everything is computed from the serialized span trees — no live
tracer needed — so traces can be inspected long after (and on a
different machine than) the crawl that wrote them.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.core.checkpoint import (
    MANIFEST_NAME,
    CheckpointError,
    load_shard_records,
    trace_shard_name,
)
from repro.core.reporting import render_table
from repro.obs import trace_digest

#: cap on rows per timeline/ranking in the report (keeps the text
#: output and the JSON export bounded on 10k-site runs; the report
#: records how many entries the cap dropped)
DEFAULT_TOP = 10


class TraceReportError(ValueError):
    """The run directory holds no usable trace."""


class TraceMissing(TraceReportError):
    """A valid run that was simply never traced.

    Distinguished from genuine damage so the CLI can degrade
    gracefully (warn + exit 0): asking for a trace report on a run
    crawled without ``--trace`` is a benign mismatch, not an error in
    either the run or the request.
    """


def load_trace_records(run_dir: str) -> List[Dict[str, Any]]:
    """All trace records of a run, merged last-wins per site.

    Conditions come from the manifest.  A run whose manifest says it
    never traced (and which indeed has no shards) raises
    :class:`TraceMissing`; a traced run whose shards are gone or
    unreadable raises plain :class:`TraceReportError`.
    """
    manifest_path = os.path.join(run_dir, MANIFEST_NAME)
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise TraceReportError(
            "%s: not a survey run directory (%s)" % (run_dir, error)
        )
    merged: Dict[Tuple[str, str], Dict[str, Any]] = {}
    found = False
    for condition in manifest.get("conditions", []):
        path = os.path.join(run_dir, trace_shard_name(condition))
        if not os.path.exists(path):
            continue
        found = True
        try:
            records, _ = load_shard_records(
                path, repair=False, payload_key="trace"
            )
        except CheckpointError as error:
            raise TraceReportError(str(error))
        for record in records:
            merged[(record["condition"], record["domain"])] = record
    if not found:
        if not manifest.get("tracing", False):
            raise TraceMissing(
                "%s was crawled without --trace, so there are no "
                "trace shards to report on" % run_dir
            )
        raise TraceReportError(
            "%s holds no trace shards — was the survey run with "
            "--trace?" % run_dir
        )
    return [merged[key] for key in sorted(merged)]


# -- span-tree arithmetic ----------------------------------------------

def _walk(node: Dict[str, Any], visit) -> None:
    visit(node)
    for child in node.get("children", ()):
        _walk(child, visit)


def _children_ms(node: Dict[str, Any]) -> float:
    return sum(c.get("real_ms", 0.0) for c in node.get("children", ()))


def _exclusive_ms(node: Dict[str, Any]) -> float:
    """A span's own time net of its children's inclusive time.

    Clamped at zero: events carry ``real_ms`` 0.0 and perf_counter
    noise can make children nominally outrun a tight parent.
    """
    return max(0.0, node.get("real_ms", 0.0) - _children_ms(node))


def _critical_path(root: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The greedy max-inclusive-duration chain from root to leaf."""
    path = []
    node: Optional[Dict[str, Any]] = root
    while node is not None:
        path.append({
            "name": node["name"],
            "attrs": node.get("attrs", {}),
            "real_ms": round(node.get("real_ms", 0.0), 3),
            "exclusive_ms": round(_exclusive_ms(node), 3),
        })
        children = node.get("children", ())
        node = max(
            children, key=lambda c: c.get("real_ms", 0.0), default=None
        )
    return path


def build_trace_report(
    run_dir: str, top: int = DEFAULT_TOP
) -> Dict[str, Any]:
    """The full trace summary as a JSON-ready dict."""
    records = load_trace_records(run_dir)

    sites: List[Dict[str, Any]] = []
    pages: List[Dict[str, Any]] = []
    phases: Dict[str, float] = {}
    origins: Dict[str, float] = {}
    retries: List[Dict[str, Any]] = []
    breakers: List[Dict[str, Any]] = []
    budget_events: List[Dict[str, Any]] = []
    quarantines: List[Dict[str, Any]] = []
    releases: List[Dict[str, Any]] = []
    memory_events: List[Dict[str, Any]] = []
    frame_events: List[Dict[str, Any]] = []
    span_count = 0
    conditions = sorted({r["condition"] for r in records})

    for record in records:
        condition, domain = record["condition"], record["domain"]
        root = record["trace"]
        site_ms = root.get("real_ms", 0.0)
        sites.append({
            "condition": condition,
            "domain": domain,
            "real_ms": round(site_ms, 3),
            "attempts": root.get("attrs", {}).get("attempts", 1),
            "measured": root.get("attrs", {}).get("measured"),
        })

        def visit(node: Dict[str, Any]) -> None:
            nonlocal span_count
            span_count += 1
            name = node["name"]
            attrs = node.get("attrs", {})
            where = {"condition": condition, "domain": domain}
            if "vt" in node:
                where["vt"] = node["vt"]
            if name.startswith("phase:"):
                phases[name[6:]] = (
                    phases.get(name[6:], 0.0) + _exclusive_ms(node)
                )
            elif name == "page":
                pages.append({
                    "condition": condition,
                    "domain": domain,
                    "url": attrs.get("url"),
                    "real_ms": round(node.get("real_ms", 0.0), 3),
                })
                url = attrs.get("url")
                if url:
                    origin = url.split("/", 3)[2] if "//" in url else url
                    origins[origin] = (
                        origins.get(origin, 0.0)
                        + node.get("real_ms", 0.0)
                    )
            elif name == "net:retry":
                retries.append(dict(where, url=attrs.get("url"),
                                    attempt=attrs.get("attempt")))
            elif name in ("net:breaker-open", "net:short-circuit"):
                breakers.append(dict(where, event=name,
                                     origin=attrs.get("origin")))
            elif name == "budget-exhausted":
                budget_events.append(dict(
                    where, cause=attrs.get("cause"),
                    overshoot=attrs.get("overshoot"),
                ))
            elif name == "quarantined":
                quarantines.append(dict(
                    where, strikes=attrs.get("strikes")
                ))
            elif name == "lease":
                # Epoch 1 is every site's first dispatch; only epochs
                # past it mark a site the supervisor re-leased after a
                # fault, which is what the timeline is for.
                if (attrs.get("epoch") or 0) > 1:
                    releases.append(dict(where, epoch=attrs["epoch"]))
            elif name == "memory":
                memory_events.append(dict(
                    where, rss_mb=attrs.get("rss_mb"),
                    limit_mb=attrs.get("limit_mb"),
                ))
            elif name == "frame":
                frame_events.append(dict(
                    where, reason=attrs.get("reason")
                ))

        _walk(root, visit)

    sites.sort(key=lambda s: -s["real_ms"])
    pages.sort(key=lambda p: -p["real_ms"])
    slowest_root = None
    if sites:
        key = (sites[0]["condition"], sites[0]["domain"])
        for record in records:
            if (record["condition"], record["domain"]) == key:
                slowest_root = record["trace"]
                break

    def capped(items: List[Dict[str, Any]]) -> Dict[str, Any]:
        return {
            "entries": items[:top],
            "dropped": max(0, len(items) - top),
            "total": len(items),
        }

    return {
        "run_dir": run_dir,
        "conditions": conditions,
        "sites": len(records),
        "spans": span_count,
        "structural_digest": trace_digest(records),
        "phase_exclusive_ms": {
            name: round(ms, 3) for name, ms in sorted(phases.items())
        },
        "slowest_sites": capped(sites),
        "slowest_pages": capped(pages),
        "origin_ms": {
            origin: round(ms, 3)
            for origin, ms in sorted(
                origins.items(), key=lambda kv: -kv[1]
            )[:top]
        },
        "retries": capped(retries),
        "breaker_events": capped(breakers),
        "budget_exhaustions": capped(budget_events),
        "quarantines": capped(quarantines),
        "releases": capped(releases),
        "memory_pressure": capped(memory_events),
        "frame_corruptions": capped(frame_events),
        "critical_path": (
            _critical_path(slowest_root) if slowest_root else []
        ),
    }


# -- text rendering ----------------------------------------------------

def _ms(value: float) -> str:
    return "%.1f ms" % value


def trace_report_text(report: Dict[str, Any]) -> str:
    """Render :func:`build_trace_report`'s dict for the terminal."""
    blocks: List[str] = []
    blocks.append(
        "%s: %d site trace(s), %d span(s), condition(s): %s\n"
        "structural digest: %s" % (
            report["run_dir"], report["sites"], report["spans"],
            ", ".join(report["conditions"]),
            report["structural_digest"],
        )
    )

    phases = report["phase_exclusive_ms"]
    if phases:
        total = sum(phases.values())
        blocks.append(render_table(
            ("Phase", "Exclusive", "Share"),
            [(name, _ms(ms),
              "%.1f%%" % (100.0 * ms / total if total else 0.0))
             for name, ms in phases.items()],
        ))

    site_entries = report["slowest_sites"]["entries"]
    if site_entries:
        blocks.append("slowest sites:\n" + render_table(
            ("Domain", "Condition", "Wall", "Attempts"),
            [(s["domain"], s["condition"], _ms(s["real_ms"]),
              str(s["attempts"])) for s in site_entries],
        ))

    page_entries = report["slowest_pages"]["entries"]
    if page_entries:
        blocks.append("slowest pages:\n" + render_table(
            ("URL", "Condition", "Wall"),
            [(p["url"] or "?", p["condition"], _ms(p["real_ms"]))
             for p in page_entries],
        ))

    if report["origin_ms"]:
        blocks.append("time by origin:\n" + render_table(
            ("Origin", "Wall"),
            [(origin, _ms(ms))
             for origin, ms in report["origin_ms"].items()],
        ))

    for key, label, columns in (
        ("retries", "request retries",
         lambda e: (e["domain"], e.get("url") or "?",
                    str(e.get("attempt")))),
        ("breaker_events", "breaker events",
         lambda e: (e["domain"], e.get("event", "?"),
                    e.get("origin") or "?")),
        ("budget_exhaustions", "budget exhaustions",
         lambda e: (e["domain"], str(e.get("cause")),
                    "%.2fx" % e.get("overshoot", 0.0))),
        ("quarantines", "quarantines",
         lambda e: (e["domain"], "strikes",
                    str(e.get("strikes")))),
        ("releases", "re-leased sites",
         lambda e: (e["domain"], "epoch",
                    str(e.get("epoch")))),
        ("memory_pressure", "memory pressure",
         lambda e: (e["domain"],
                    "%.1f MB" % (e.get("rss_mb") or 0.0),
                    "limit %.1f MB" % (e.get("limit_mb") or 0.0))),
        ("frame_corruptions", "frame corruptions",
         lambda e: (e["domain"], "reason",
                    str(e.get("reason")))),
    ):
        section = report[key]
        if not section["total"]:
            continue
        lines = ["%s (%d total%s):" % (
            label, section["total"],
            ", %d not shown" % section["dropped"]
            if section["dropped"] else "",
        )]
        for entry in section["entries"]:
            lines.append("  %s" % "  ".join(columns(entry)))
        blocks.append("\n".join(lines))

    path = report["critical_path"]
    if path:
        lines = ["critical path (slowest site):"]
        for depth, step in enumerate(path):
            attrs = step["attrs"]
            detail = (attrs.get("url") or attrs.get("domain")
                      or attrs.get("n") or attrs.get("round") or "")
            lines.append("  %s%s %s (%s)" % (
                "  " * depth, step["name"],
                detail, _ms(step["real_ms"]),
            ))
        blocks.append("\n".join(lines))

    return "\n\n".join(blocks)

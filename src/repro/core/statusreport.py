"""Read-only status and metrics views over a checkpointed run.

``repro status`` and ``repro metrics`` answer the operator's two
questions about a crawl — *how far along is it* and *what is it doing*
— without ever acquiring the run lock or writing a byte: both surfaces
may be pointed at a run another process is actively appending to.
Everything here reads the durable artifacts the crawl already
maintains:

* ``metrics.jsonl`` — the registry snapshots the metrics pump appends
  on its heartbeat cadence (:mod:`repro.core.runmetrics`); the latest
  snapshot carries the progress counters, per-condition breakdown,
  worker gauges and failure causes.
* ``manifest.json`` / ``quarantine.json`` / ``leases.json`` /
  ``run.lock`` — run identity, strike table, fencing state, liveness.

A torn tail on ``metrics.jsonl`` (a snapshot append in flight) is
silently dropped, never repaired from here — repair belongs to
``repro fsck --repair`` under the lock.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.core.checkpoint import (
    LEASES_NAME,
    MANIFEST_NAME,
    METRICS_NAME,
    QUARANTINE_NAME,
    CheckpointError,
    load_metrics_records,
)
from repro.core.reporting import render_table
from repro.core.runmetrics import metrics_digest, series_value
from repro.core.storage import LOCK_NAME, pid_alive, read_lock


class StatusError(ValueError):
    """The directory does not hold a readable run."""


def _read_json(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


def load_metrics_snapshots(
    run_dir: str,
) -> Tuple[List[Dict[str, Any]], int]:
    """Every snapshot record in ``metrics.jsonl`` (read-only).

    Returns ``(records, dropped)`` where ``dropped`` counts a torn
    trailing write (tolerated: the crawl may be mid-append).  Missing
    file means a metrics-off or not-yet-snapshotted run: ``([], 0)``.
    """
    path = os.path.join(run_dir, METRICS_NAME)
    if not os.path.exists(path):
        return [], 0
    return load_metrics_records(path, repair=False)


def latest_snapshot(run_dir: str) -> Optional[Dict[str, Any]]:
    """The most recent snapshot envelope, or None."""
    records, _ = load_metrics_snapshots(run_dir)
    return records[-1] if records else None


def run_metrics_digest(run_dir: str) -> str:
    """Digest of the latest snapshot's stable series.

    The determinism matrix keys on this: two runs of the same
    configuration must agree whatever their process topology, kill
    schedule or chaos arm.
    """
    last = latest_snapshot(run_dir)
    if last is None:
        raise StatusError(
            "%s: no metrics snapshots (crawl run with --no-metrics?)"
            % run_dir
        )
    return metrics_digest(last["metrics"])


# ---------------------------------------------------------------------------
# status assembly


def _series_entries(
    snapshot: Dict[str, Any], name: str
) -> List[Dict[str, Any]]:
    return [
        entry for entry in snapshot.get("series", [])
        if entry.get("name") == name
    ]


def _throughput(
    records: List[Dict[str, Any]],
) -> Tuple[Optional[float], Optional[float]]:
    """(sites per minute, ETA seconds) from the snapshot trail.

    Wall-clock derived, so inherently unstable — reported, never
    digested.  Needs two snapshots with both time and progress between
    them; a freshly started (or metrics-off) run reports neither.
    """
    if len(records) < 2:
        return None, None
    first, last = records[0], records[-1]
    elapsed = float(last.get("at", 0)) - float(first.get("at", 0))
    done_first = sum(first.get("done", {}).values())
    done_last = sum(last.get("done", {}).values())
    if elapsed <= 0 or done_last <= done_first:
        return None, None
    rate = (done_last - done_first) / elapsed * 60.0
    remaining = max(0, int(last.get("total", 0)) - done_last)
    eta = remaining / rate * 60.0 if rate > 0 else None
    return round(rate, 2), round(eta, 1) if eta is not None else None


def _condition_breakdown(
    snapshot: Dict[str, Any], conditions: List[str]
) -> Dict[str, Dict[str, int]]:
    out: Dict[str, Dict[str, int]] = {}
    for condition in conditions:
        out[condition] = {
            "started": series_value(
                snapshot, "crawl_sites_started_total",
                condition=condition,
            ) or 0,
            "measured": series_value(
                snapshot, "crawl_sites_measured_total",
                condition=condition,
            ) or 0,
            "degraded": series_value(
                snapshot, "crawl_sites_degraded_total",
                condition=condition,
            ) or 0,
            "failed": sum(
                entry["value"]
                for entry in _series_entries(
                    snapshot, "crawl_sites_failed_total"
                )
                if entry["labels"].get("condition") == condition
            ),
        }
    return out


def _failure_causes(snapshot: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Top failure causes, summed across conditions, worst first."""
    by_cause: Dict[str, int] = {}
    for entry in _series_entries(snapshot, "crawl_sites_failed_total"):
        cause = entry["labels"].get("cause", "unknown")
        by_cause[cause] = by_cause.get(cause, 0) + int(entry["value"])
    ranked = sorted(
        by_cause.items(), key=lambda item: (-item[1], item[0])
    )
    return [
        {"cause": cause, "sites": count} for cause, count in ranked[:5]
    ]


def _workers(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    heartbeats = {
        entry["labels"].get("slot", "?"): entry["value"]
        for entry in _series_entries(
            snapshot, "worker_heartbeat_age_seconds"
        )
    }
    rss = {
        entry["labels"].get("proc", "?"): entry["value"]
        for entry in _series_entries(snapshot, "worker_rss_mb")
    }
    return {"heartbeat_age_seconds": heartbeats, "rss_mb": rss}


_FAULT_SERIES = {
    "watchdog_kills": "supervisor_watchdog_kills_total",
    "lease_revocations": "supervisor_lease_revocations_total",
    "stale_results": "supervisor_stale_results_total",
    "worker_faults": "supervisor_worker_faults_total",
    "spawn_retries": "supervisor_spawn_retries_total",
    "memory_recycles": "supervisor_memory_recycles_total",
}


def _faults(snapshot: Dict[str, Any]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for key, series in _FAULT_SERIES.items():
        value = sum(
            int(entry["value"])
            for entry in _series_entries(snapshot, series)
        )
        if value:
            out[key] = value
    corruptions = sum(
        int(entry["value"])
        for entry in _series_entries(
            snapshot, "supervisor_frame_corruptions_total"
        )
    )
    if corruptions:
        out["frame_corruptions"] = corruptions
    breaker = sum(
        int(entry["value"])
        for entry in _series_entries(snapshot, "fetch_breaker_opens_total")
    )
    if breaker:
        out["breaker_opens"] = breaker
    return out


def build_status(run_dir: str) -> Dict[str, Any]:
    """Assemble the full status view of one run directory."""
    manifest = _read_json(os.path.join(run_dir, MANIFEST_NAME))
    if manifest is None:
        raise StatusError(
            "%s: no readable %s — not a run directory"
            % (run_dir, MANIFEST_NAME)
        )
    conditions = [str(c) for c in manifest.get("conditions", [])]
    n_domains = int(manifest.get("n_domains", 0))
    total = n_domains * len(conditions)

    try:
        records, torn = load_metrics_snapshots(run_dir)
    except CheckpointError:
        records, torn = [], 0
    latest = records[-1] if records else None

    done = dict(latest.get("done", {})) if latest is not None else {}
    done_total = sum(done.values())
    if latest is not None:
        total = int(latest.get("total", total))
    rate, eta = _throughput(records)

    lock_payload = read_lock(os.path.join(run_dir, LOCK_NAME))
    lock_pid = (
        int(lock_payload.get("pid", 0)) if lock_payload else None
    )
    quarantine = _read_json(os.path.join(run_dir, QUARANTINE_NAME))
    strikes = (
        quarantine.get("strikes", {})
        if isinstance(quarantine, dict) else {}
    )
    leases_data = _read_json(os.path.join(run_dir, LEASES_NAME))
    leases = (
        leases_data.get("leases", {})
        if isinstance(leases_data, dict) else {}
    )

    status: Dict[str, Any] = {
        "run_dir": os.path.abspath(run_dir),
        "status": manifest.get("status"),
        "started_at": manifest.get("started_at"),
        "conditions": conditions,
        "n_domains": n_domains,
        "total": total,
        "done": done,
        "done_total": done_total,
        "progress_percent": (
            round(100.0 * done_total / total, 1) if total else 0.0
        ),
        "sites_per_minute": rate,
        "eta_seconds": eta,
        "lock": {
            "held": lock_pid is not None,
            "pid": lock_pid,
            "live": (
                pid_alive(lock_pid) if lock_pid is not None else False
            ),
        },
        "strikes": {
            "domains": len([d for d, n in strikes.items() if n]),
            "total": sum(int(n) for n in strikes.values()),
        },
        "leases": sum(len(by) for by in leases.values()),
        "metrics": {
            "snapshots": len(records),
            "torn_tail": bool(torn),
            "last_seq": latest.get("seq") if latest else None,
            "last_kind": latest.get("kind") if latest else None,
        },
    }
    if latest is not None:
        snapshot = latest["metrics"]
        status["by_condition"] = _condition_breakdown(
            snapshot, conditions
        )
        status["failure_causes"] = _failure_causes(snapshot)
        status["workers"] = _workers(snapshot)
        status["faults"] = _faults(snapshot)
    return status


# ---------------------------------------------------------------------------
# rendering


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    seconds = int(seconds)
    if seconds >= 3600:
        return "%dh%02dm" % (seconds // 3600, seconds % 3600 // 60)
    if seconds >= 60:
        return "%dm%02ds" % (seconds // 60, seconds % 60)
    return "%ds" % seconds


def status_text(status: Dict[str, Any]) -> str:
    """The human-facing dashboard for one :func:`build_status` view."""
    lock = status["lock"]
    if lock["held"] and lock["live"]:
        liveness = "locked by live pid %d" % lock["pid"]
    elif lock["held"]:
        liveness = "stale lock (pid %d dead)" % lock["pid"]
    else:
        liveness = "unlocked"
    lines = [
        "run      %s" % status["run_dir"],
        "status   %s (%s)" % (status["status"], liveness),
        "started  %s" % status["started_at"],
        "progress %d/%d sites (%.1f%%)" % (
            status["done_total"], status["total"],
            status["progress_percent"],
        ),
        "rate     %s    eta %s" % (
            "%.1f sites/min" % status["sites_per_minute"]
            if status["sites_per_minute"] is not None else "-",
            _fmt_eta(status["eta_seconds"]),
        ),
    ]
    by_condition = status.get("by_condition")
    if by_condition:
        rows = [
            (
                condition,
                "%d/%d" % (
                    status["done"].get(condition, 0),
                    status["n_domains"],
                ),
                str(detail["measured"]),
                str(detail["degraded"]),
                str(detail["failed"]),
            )
            for condition, detail in sorted(by_condition.items())
        ]
        lines += ["", render_table(
            ("condition", "done", "measured", "degraded", "failed"),
            rows,
        )]
    workers = status.get("workers") or {}
    heartbeat = workers.get("heartbeat_age_seconds") or {}
    rss = workers.get("rss_mb") or {}
    if heartbeat or rss:
        lines += ["", "workers"]
        for slot, age in sorted(heartbeat.items()):
            lines.append("  slot %s: heartbeat %.1fs ago" % (slot, age))
        for proc, mb in sorted(rss.items()):
            lines.append("  pid %s: rss %.1f MB" % (proc, mb))
    faults = status.get("faults")
    if faults:
        lines += ["", "faults   " + "  ".join(
            "%s=%d" % (key, value)
            for key, value in sorted(faults.items())
        )]
    strikes = status["strikes"]
    lines += ["", "strikes  %d across %d domain(s)    leases %d" % (
        strikes["total"], strikes["domains"], status["leases"],
    )]
    causes = status.get("failure_causes")
    if causes:
        lines += ["", "top failure causes"]
        for item in causes:
            lines.append(
                "  %-24s %d site(s)" % (item["cause"], item["sites"])
            )
    metrics = status["metrics"]
    lines += ["", "metrics  %d snapshot(s), last seq %s (%s)%s" % (
        metrics["snapshots"], metrics["last_seq"], metrics["last_kind"],
        ", torn tail (append in flight)" if metrics["torn_tail"]
        else "",
    )]
    return "\n".join(lines)

"""Render analyses as paper-style text tables and plot-ready series."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import analysis
from repro.core.survey import SurveyResult
from repro.core.validation import ExternalValidationOutcome


def _format_rate(rate: Optional[float]) -> str:
    if rate is None:
        return "-"
    return "%.1f%%" % (rate * 100.0)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """A plain, aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def table1_text(result: SurveyResult) -> str:
    summary = analysis.table1_crawl_summary(result)
    rows = [
        ("Domains measured", "{:,}".format(summary.domains_measured)),
        ("Domains failed", "{:,}".format(summary.domains_failed)),
        ("Total website interaction time",
         "%.1f days" % summary.interaction_days),
        ("Web pages visited", "{:,}".format(summary.pages_visited)),
        ("Feature invocations recorded",
         "{:,}".format(summary.feature_invocations)),
    ]
    return render_table(("Quantity", "Value"), rows)


def table2_text(result: SurveyResult) -> str:
    rows = [
        (
            row.name,
            row.abbrev,
            str(row.features),
            "{:,}".format(row.sites),
            _format_rate(row.block_rate),
            str(row.cves),
        )
        for row in analysis.table2_standard_summary(result)
    ]
    return render_table(
        ("Standard Name", "Abbrev", "# Features", "# Sites", "Block Rate",
         "# CVEs"),
        rows,
    )


def table3_text(rows: List[Tuple[int, float]]) -> str:
    return render_table(
        ("Round #", "Avg. New Standards"),
        [(str(round_index), "%.2f" % avg) for round_index, avg in rows],
    )


def headline_text(result: SurveyResult) -> str:
    stats = analysis.headline_feature_statistics(result)
    lines = [
        "Features instrumented:        %d" % stats.total_features,
        "Never used:                   %d (%.1f%%)"
        % (stats.never_used_features, 100 * stats.never_used_fraction),
        "Used on <1%% of sites:         %d (cumulative %.1f%%)"
        % (
            stats.under_one_percent_features,
            100 * stats.under_one_percent_fraction,
        ),
        "Blocked >90%% of the time:     %d (%.1f%%)"
        % (
            stats.blocked_over_90_features,
            100 * stats.blocked_over_90_features / stats.total_features,
        ),
        "On <1%% of sites w/ blocking:  %d (%.1f%%)"
        % (
            stats.under_one_percent_with_blocking,
            100 * stats.blocked_under_one_percent_fraction,
        ),
        "Standards:                    %d (%d never used, %d on <=1%%)"
        % (
            stats.total_standards,
            stats.never_used_standards,
            stats.under_one_percent_standards,
        ),
    ]
    return "\n".join(lines)


def figure3_series(result: SurveyResult) -> str:
    points = analysis.figure3_standard_popularity_cdf(result)
    rows = [
        (str(sites), "%.1f%%" % (fraction * 100)) for sites, fraction in points
    ]
    return render_table(("Sites using standard", "Portion of standards"),
                        rows)


def figure4_series(result: SurveyResult) -> str:
    points = analysis.figure4_popularity_vs_block_rate(result)
    rows = [
        (p.abbrev, "{:,}".format(p.sites), _format_rate(p.block_rate))
        for p in sorted(points, key=lambda p: -p.sites)
    ]
    return render_table(("Standard", "Sites", "Block rate"), rows)


def figure5_series(result: SurveyResult) -> str:
    points = analysis.figure5_site_vs_traffic_popularity(result)
    rows = [
        (
            p.abbrev,
            "%.1f%%" % (p.site_fraction * 100),
            "%.1f%%" % (p.visit_fraction * 100),
            "%+.1f%%" % (p.skew * 100),
        )
        for p in sorted(points, key=lambda p: -abs(p.skew))
    ]
    return render_table(
        ("Standard", "% of sites", "% of visits", "Skew"), rows
    )


def figure6_series(result: SurveyResult) -> str:
    points = analysis.figure6_age_vs_popularity(result)
    rows = [
        (
            p.abbrev,
            p.introduced.isoformat(),
            "{:,}".format(p.sites),
            p.block_band,
        )
        for p in sorted(points, key=lambda p: p.introduced)
    ]
    return render_table(
        ("Standard", "Introduced", "Sites", "Block band"), rows
    )


def figure7_series(result: SurveyResult) -> str:
    points = analysis.figure7_ad_vs_tracking_block(result)
    rows = [
        (
            p.abbrev,
            "{:,}".format(p.sites),
            _format_rate(p.ad_block_rate),
            _format_rate(p.tracking_block_rate),
        )
        for p in sorted(points, key=lambda p: -p.sites)
    ]
    return render_table(
        ("Standard", "Sites", "Ad block rate", "Tracking block rate"), rows
    )


def figure8_series(result: SurveyResult) -> str:
    pdf = analysis.figure8_site_complexity_pdf(result)
    rows = [
        (str(count), "%.1f%%" % (fraction * 100))
        for count, fraction in pdf.items()
    ]
    return render_table(("Standards used", "Portion of sites"), rows)


def figure9_series(outcome: ExternalValidationOutcome) -> str:
    rows = [
        (str(new_count), str(domains))
        for new_count, domains in outcome.histogram.items()
    ]
    table = render_table(
        ("New standards observed", "Number of domains"), rows
    )
    return "%s\n(%d sites compared, %.1f%% with nothing new)" % (
        table, outcome.sites_compared, outcome.zero_fraction * 100
    )


def failure_report_text(result: SurveyResult) -> str:
    """Every unmeasured (condition, domain) with its cause and attempts.

    ``transient`` marks failures the retry policy gave up on — the
    candidates worth re-crawling — versus deterministic ones (dead
    hosts, scriptless sites) that re-running cannot fix.
    """
    rows: List[Tuple[str, str, str, str, str]] = []
    for condition in result.conditions:
        for failure in result.failed_domains(condition):
            rows.append((
                str(failure),
                condition,
                failure.cause or "unknown",
                str(failure.attempts),
                "yes" if failure.transient else "no",
            ))
    if not rows:
        return "no failed domains"
    return render_table(
        ("Domain", "Condition", "Cause", "Attempts", "Transient"), rows
    )


def progress_report_text(result: SurveyResult) -> str:
    """Per-condition crawl health: done / failed / retried sites."""
    rows = []
    for condition in result.conditions:
        total = len(result.domains)
        measured = len(result.measured_domains(condition))
        rows.append((
            condition,
            "%d/%d" % (measured, total),
            str(total - measured),
            str(len(result.retried_domains(condition))),
        ))
    return render_table(
        ("Condition", "Measured", "Failed", "Retried"), rows
    )


def checkpoint_status_text(
    done_counts: Dict[str, int], n_domains: int
) -> str:
    """Resume-aware progress: sites done / remaining per condition."""
    rows = [
        (condition, str(done), str(max(0, n_domains - done)))
        for condition, done in done_counts.items()
    ]
    return render_table(("Condition", "Done", "Remaining"), rows)


def figure1_series() -> str:
    points = analysis.figure1_browser_evolution()
    rows = [
        (str(p.year), p.browser, "%.1f" % p.million_loc,
         str(p.web_standards))
        for p in points
    ]
    return render_table(
        ("Year", "Browser", "MLoC", "Standards available"), rows
    )

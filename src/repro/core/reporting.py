"""Render analyses as paper-style text tables and plot-ready series."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import analysis
from repro.core.survey import SurveyResult
from repro.core.validation import ExternalValidationOutcome


def _format_rate(rate: Optional[float]) -> str:
    if rate is None:
        return "-"
    return "%.1f%%" % (rate * 100.0)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """A plain, aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def table1_text(result: SurveyResult) -> str:
    summary = analysis.table1_crawl_summary(result)
    rows = [
        ("Domains measured", "{:,}".format(summary.domains_measured)),
        ("Domains failed", "{:,}".format(summary.domains_failed)),
        ("Domains degraded (measured, resources lost)",
         "{:,}".format(summary.domains_degraded)),
        ("Total website interaction time",
         "%.1f days" % summary.interaction_days),
        ("Web pages visited", "{:,}".format(summary.pages_visited)),
        ("Feature invocations recorded",
         "{:,}".format(summary.feature_invocations)),
    ]
    return render_table(("Quantity", "Value"), rows)


def table2_text(result: SurveyResult) -> str:
    rows = [
        (
            row.name,
            row.abbrev,
            str(row.features),
            "{:,}".format(row.sites),
            _format_rate(row.block_rate),
            str(row.cves),
        )
        for row in analysis.table2_standard_summary(result)
    ]
    return render_table(
        ("Standard Name", "Abbrev", "# Features", "# Sites", "Block Rate",
         "# CVEs"),
        rows,
    )


def table3_text(rows: List[Tuple[int, float]]) -> str:
    return render_table(
        ("Round #", "Avg. New Standards"),
        [(str(round_index), "%.2f" % avg) for round_index, avg in rows],
    )


def headline_text(result: SurveyResult) -> str:
    stats = analysis.headline_feature_statistics(result)
    lines = [
        "Features instrumented:        %d" % stats.total_features,
        "Never used:                   %d (%.1f%%)"
        % (stats.never_used_features, 100 * stats.never_used_fraction),
        "Used on <1%% of sites:         %d (cumulative %.1f%%)"
        % (
            stats.under_one_percent_features,
            100 * stats.under_one_percent_fraction,
        ),
        "Blocked >90%% of the time:     %d (%.1f%%)"
        % (
            stats.blocked_over_90_features,
            100 * stats.blocked_over_90_features / stats.total_features,
        ),
        "On <1%% of sites w/ blocking:  %d (%.1f%%)"
        % (
            stats.under_one_percent_with_blocking,
            100 * stats.blocked_under_one_percent_fraction,
        ),
        "Standards:                    %d (%d never used, %d on <=1%%)"
        % (
            stats.total_standards,
            stats.never_used_standards,
            stats.under_one_percent_standards,
        ),
    ]
    return "\n".join(lines)


def figure3_series(result: SurveyResult) -> str:
    points = analysis.figure3_standard_popularity_cdf(result)
    rows = [
        (str(sites), "%.1f%%" % (fraction * 100)) for sites, fraction in points
    ]
    return render_table(("Sites using standard", "Portion of standards"),
                        rows)


def figure4_series(result: SurveyResult) -> str:
    points = analysis.figure4_popularity_vs_block_rate(result)
    rows = [
        (p.abbrev, "{:,}".format(p.sites), _format_rate(p.block_rate))
        for p in sorted(points, key=lambda p: -p.sites)
    ]
    return render_table(("Standard", "Sites", "Block rate"), rows)


def figure5_series(result: SurveyResult) -> str:
    points = analysis.figure5_site_vs_traffic_popularity(result)
    rows = [
        (
            p.abbrev,
            "%.1f%%" % (p.site_fraction * 100),
            "%.1f%%" % (p.visit_fraction * 100),
            "%+.1f%%" % (p.skew * 100),
        )
        for p in sorted(points, key=lambda p: -abs(p.skew))
    ]
    return render_table(
        ("Standard", "% of sites", "% of visits", "Skew"), rows
    )


def figure6_series(result: SurveyResult) -> str:
    points = analysis.figure6_age_vs_popularity(result)
    rows = [
        (
            p.abbrev,
            p.introduced.isoformat(),
            "{:,}".format(p.sites),
            p.block_band,
        )
        for p in sorted(points, key=lambda p: p.introduced)
    ]
    return render_table(
        ("Standard", "Introduced", "Sites", "Block band"), rows
    )


def figure7_series(result: SurveyResult) -> str:
    points = analysis.figure7_ad_vs_tracking_block(result)
    rows = [
        (
            p.abbrev,
            "{:,}".format(p.sites),
            _format_rate(p.ad_block_rate),
            _format_rate(p.tracking_block_rate),
        )
        for p in sorted(points, key=lambda p: -p.sites)
    ]
    return render_table(
        ("Standard", "Sites", "Ad block rate", "Tracking block rate"), rows
    )


def figure8_series(result: SurveyResult) -> str:
    pdf = analysis.figure8_site_complexity_pdf(result)
    rows = [
        (str(count), "%.1f%%" % (fraction * 100))
        for count, fraction in pdf.items()
    ]
    return render_table(("Standards used", "Portion of sites"), rows)


def figure9_series(outcome: ExternalValidationOutcome) -> str:
    rows = [
        (str(new_count), str(domains))
        for new_count, domains in outcome.histogram.items()
    ]
    table = render_table(
        ("New standards observed", "Number of domains"), rows
    )
    return "%s\n(%d sites compared, %.1f%% with nothing new)" % (
        table, outcome.sites_compared, outcome.zero_fraction * 100
    )


def failure_report_text(result: SurveyResult) -> str:
    """Every unmeasured (condition, domain) with its cause and attempts.

    ``transient`` marks failures the retry policy gave up on — the
    candidates worth re-crawling — versus deterministic ones (dead
    hosts, scriptless sites) that re-running cannot fix.  A summary
    groups failures by structured cause (the budget class, quarantine,
    or the failure string) with the worst overshoot per cause, so a
    budget tuned 10x too tight reads differently from one a site
    barely grazed.
    """
    rows: List[Tuple[str, str, str, str, str]] = []
    by_cause: Dict[str, List] = {}
    for condition in result.conditions:
        for failure in result.failed_domains(condition):
            rows.append((
                str(failure),
                condition,
                failure.cause or "unknown",
                str(failure.attempts),
                "yes" if failure.transient else "no",
            ))
            cause_key = (failure.budget_cause
                         or failure.cause or "unknown")
            by_cause.setdefault(cause_key, []).append(failure)
    if not rows:
        return "no failed domains"
    table = render_table(
        ("Domain", "Condition", "Cause", "Attempts", "Transient"), rows
    )
    summary_lines = ["by cause:"]
    for cause_key in sorted(by_cause):
        failures = by_cause[cause_key]
        line = "  %s: %d site%s" % (
            cause_key, len(failures), "" if len(failures) == 1 else "s"
        )
        worst = max(f.overshoot for f in failures)
        if worst > 0.0:
            line += ", worst overshoot %.1fx" % worst
        summary_lines.append(line)
    return "%s\n\n%s" % (table, "\n".join(summary_lines))


def compile_cache_text(result: SurveyResult) -> str:
    """The crawl's compile-cache counters, as a table.

    ``hits``/``misses``/``evictions`` answer "did each distinct script
    body parse exactly once?" (a healthy crawl shows a hit rate near
    1.0 and zero evictions); ``parse_seconds`` is the residual cost the
    cache could not avoid.
    """
    cache = result.compile_cache
    if not cache:
        return "no compile-cache statistics recorded"
    hits = cache.get("hits", 0)
    misses = cache.get("misses", 0)
    lookups = hits + misses
    rows = [
        ("Cache hits", "{:,}".format(int(hits))),
        ("Cache misses (bodies parsed)", "{:,}".format(int(misses))),
        ("Hit rate",
         _format_rate(hits / lookups if lookups else None)),
        ("Evictions", "{:,}".format(int(cache.get("evictions", 0)))),
        ("Syntax-error hits",
         "{:,}".format(int(cache.get("error_hits", 0)))),
        ("Entries resident", "{:,}".format(int(cache.get("entries", 0)))),
        ("Source bytes compiled",
         "{:,}".format(int(cache.get("compiled_bytes", 0)))),
        ("Parse wall time", "%.2f s" % cache.get("parse_seconds", 0.0)),
    ]
    return render_table(("Compile cache", "Value"), rows)


def phase_timing_text(result: SurveyResult) -> str:
    """Exclusive wall time per pipeline phase, as a table.

    Phases nest (an XHR mid-script, a handler compile mid-monkey), but
    accounting is exclusive, so the rows sum to the instrumented time
    without double counting.  The share column is of the summed phase
    time, not of ``wall_seconds`` — uninstrumented work (HTML parsing,
    realm construction, analysis) accounts for the difference.
    """
    phases = result.phase_seconds
    if not phases:
        return "no phase timings recorded"
    from repro.timing import PHASES

    ordered = [name for name in PHASES if name in phases]
    ordered += sorted(set(phases) - set(PHASES))
    total = sum(phases.values())
    rows = [
        (name, "%.2f s" % phases[name],
         _format_rate(phases[name] / total if total else None))
        for name in ordered
    ]
    rows.append(("(instrumented total)", "%.2f s" % total, ""))
    rows.append(("(crawl wall clock)", "%.2f s" % result.wall_seconds, ""))
    return render_table(("Phase", "Wall time", "Share"), rows)


def timing_report_text(result: SurveyResult) -> str:
    """Compile-cache counters + per-phase wall-time breakdown."""
    return "%s\n\n%s" % (
        compile_cache_text(result), phase_timing_text(result)
    )


def crawl_health_text(result: SurveyResult) -> str:
    """Per-condition crawl health: done / failed / retried sites.

    Depends only on what was *measured*, so a resumed run prints the
    same table as the uninterrupted one — the CLI appends it to every
    checkpointed run for exactly that reproducibility.
    """
    rows = []
    for condition in result.conditions:
        total = len(result.domains)
        measured = len(result.measured_domains(condition))
        rows.append((
            condition,
            "%d/%d" % (measured, total),
            str(total - measured),
            str(len(result.degraded_domains(condition))),
            str(len(result.retried_domains(condition))),
        ))
    return render_table(
        ("Condition", "Measured", "Failed", "Degraded", "Retried"), rows
    )


def degraded_report_text(result: SurveyResult) -> str:
    """Every degraded (condition, domain) with its lost resources.

    Degraded sites *were* measured — their pages loaded and their
    features counted — but lost subresources or needed HTML salvage
    along the way, so their numbers are lower bounds.  The report lists
    each site's structured causes (slug + url + wire attempts) and a
    per-slug summary, keeping the loss ledger separate from the failure
    ledger (:func:`failure_report_text`)."""
    rows: List[Tuple[str, str, str, str, str]] = []
    by_slug: Dict[str, int] = {}
    total_lost = 0
    for condition in result.conditions:
        for domain in result.degraded_domains(condition):
            m = result.measurements[condition][domain]
            total_lost += m.degraded_resources
            for cause in m.degraded:
                rows.append((
                    domain,
                    condition,
                    cause.slug,
                    cause.url,
                    str(cause.attempts),
                ))
                by_slug[cause.slug] = by_slug.get(cause.slug, 0) + 1
    if not rows:
        return "no degraded domains"
    table = render_table(
        ("Domain", "Condition", "Cause", "URL", "Attempts"), rows
    )
    summary_lines = [
        "by cause (%d distinct losses, %d occurrences):"
        % (len(rows), total_lost)
    ]
    for slug in sorted(by_slug):
        summary_lines.append("  %s: %d" % (slug, by_slug[slug]))
    return "%s\n\n%s" % (table, "\n".join(summary_lines))


def telemetry_report_text(result: SurveyResult) -> str:
    """Every canonical counter the crawl keeps, in one table.

    Per-condition sums of the per-site counters (the single source of
    truth is :data:`repro.browser.session.TELEMETRY_COUNTERS` on
    ``SiteMeasurement``), the quarantine count, and the run-wide
    compile-cache traffic.  The telemetry-schema test pins that
    nothing surfaced here lives anywhere else.
    """
    from repro.browser.session import TELEMETRY_COUNTERS

    rows = []
    for condition in result.conditions:
        totals = result.telemetry_totals(condition)
        rows.append(
            (condition,)
            + tuple("{:,}".format(totals[name])
                    for name in TELEMETRY_COUNTERS)
            + (str(len(result.quarantined_domains(condition))),)
        )
    headers = ("Condition",) + tuple(
        name.replace("_", " ") for name in TELEMETRY_COUNTERS
    ) + ("quarantined",)
    table = render_table(headers, rows)
    cache = result.compile_cache
    footer = "compile cache: %d hit(s), %d miss(es)" % (
        int(cache.get("hits", 0)), int(cache.get("misses", 0)),
    ) if cache else "compile cache: no statistics recorded"
    return "%s\n\n%s" % (table, footer)


def progress_report_text(result: SurveyResult) -> str:
    """Crawl health plus the run's cache and phase-timing vitals.

    The vitals describe *this process's* work (a resumed or warm-cache
    run reports different counters for the same data), so they live in
    the explicitly requested report, not the always-printed health
    table."""
    report = crawl_health_text(result)
    if result.compile_cache or result.phase_seconds:
        report += "\n\n" + timing_report_text(result)
    return report


def checkpoint_status_text(
    done_counts: Dict[str, int], n_domains: int
) -> str:
    """Resume-aware progress: sites done / remaining per condition."""
    rows = [
        (condition, str(done), str(max(0, n_domains - done)))
        for condition, done in done_counts.items()
    ]
    return render_table(("Condition", "Done", "Remaining"), rows)


def figure1_series() -> str:
    points = analysis.figure1_browser_evolution()
    rows = [
        (str(p.year), p.browser, "%.1f" % p.million_loc,
         str(p.web_standards))
        for p in points
    ]
    return render_table(
        ("Year", "Browser", "MLoC", "Standards available"), rows
    )

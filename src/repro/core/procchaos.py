"""Deterministic process-fault injection (``repro chaos --proc``).

The network chaos layer (:mod:`repro.net.chaos`) models what a hostile
*web* can do to a crawl; this module models what a hostile *operating
environment* does to the crawl's own processes:

* **kill** — the worker takes SIGKILL mid-document-fetch, the moral
  equivalent of the OOM killer or an operator's ``kill -9``.
* **memory error** — a seeded ``MemoryError`` raised at an exact MiniJS
  allocation boundary (via :func:`repro.core.sandbox.set_alloc_hook`),
  the same boundary in every run.
* **pipe garbage / truncation** — seeded garbage bytes and a torn
  frame prefix written to the result pipe ahead of the real frame,
  exercising the supervisor's :class:`repro.core.ipc.FrameDecoder`
  resynchronization.
* **spawn failure** — ``fork``/``spawn`` attempts fail with ``EAGAIN``
  until a parent-side budget is spent, exercising the supervisor's
  bounded spawn retry.

Determinism contract (the PR 4/8 acceptance pattern): every fault is
armed only while the site's **lease epoch** is within ``epoch_limit``
(default: epoch 1, the first dispatch).  The fault fires, the
supervisor strikes and re-leases the site, and the epoch-2 dispatch
measures cleanly — so the surviving measurement and trace digests are
bit-identical to a clean run's, and the injected faults are visible
only in strike counts, ``process_faults`` telemetry and quarantine
evidence.  Serial runs never lease (epoch 0), so a plan-wrapped web is
inert outside the parallel supervisor.

:class:`ProcChaosPlan` is picklable (spawn ships it to workers inside
the wrapped web source); its per-task state (``_domain``/``_epoch``)
is set by the worker loop via :meth:`begin_task` and starts disarmed
in every fresh process.
"""

from __future__ import annotations

import hashlib
import os
import signal
from typing import FrozenSet, Iterable, List, Optional

from repro.core import ipc
from repro.net.resources import Request, Response, ResourceKind

__all__ = ["ProcChaosPlan", "ProcChaosSource"]


def _seeded_bytes(seed: int, domain: str, epoch: int, tag: str,
                  nbytes: int) -> bytes:
    """Deterministic noise bytes for one (domain, epoch, tag)."""
    out = bytearray()
    counter = 0
    while len(out) < nbytes:
        material = "%d|%s|%d|%s|%d" % (seed, domain, epoch, tag, counter)
        out.extend(hashlib.sha256(material.encode("utf-8")).digest())
        counter += 1
    blob = bytes(out[:nbytes])
    # Garbage must stay garbage: scrub any accidental frame marker so
    # the decoder's recovery path, not a phantom frame, is what's
    # exercised.
    return blob.replace(ipc.MAGIC, b"XXXX")


class ProcChaosPlan:
    """Which process faults to inject, where, and for how many epochs.

    Worker-side faults key on the *current task* installed by
    :meth:`begin_task`; the parent-side spawn-failure budget is plain
    mutable state consumed by the supervisor's spawn loop.
    """

    def __init__(
        self,
        seed: int = 0,
        kill_domains: Iterable[str] = (),
        memerr_domains: Iterable[str] = (),
        garbage_domains: Iterable[str] = (),
        truncate_domains: Iterable[str] = (),
        spawn_failures: int = 0,
        memerr_at_allocation: int = 5,
        epoch_limit: int = 1,
    ) -> None:
        self.seed = seed
        self.kill_domains: FrozenSet[str] = frozenset(kill_domains)
        self.memerr_domains: FrozenSet[str] = frozenset(memerr_domains)
        self.garbage_domains: FrozenSet[str] = frozenset(garbage_domains)
        self.truncate_domains: FrozenSet[str] = frozenset(
            truncate_domains
        )
        self.spawn_failures = max(0, spawn_failures)
        self.memerr_at_allocation = memerr_at_allocation
        self.epoch_limit = epoch_limit
        #: current worker task (set by :meth:`begin_task`); epoch 0
        #: means "no leased task" and disarms every worker-side fault
        self._domain: Optional[str] = None
        self._epoch = 0

    # -- worker side ---------------------------------------------------

    def begin_task(self, domain: str, epoch: Optional[int]) -> None:
        """The worker loop starts measuring ``domain`` at ``epoch``."""
        self._domain = domain
        self._epoch = epoch if epoch is not None else 0

    def _armed(self, domains: FrozenSet[str]) -> bool:
        return (
            self._domain in domains
            and 1 <= self._epoch <= self.epoch_limit
        )

    def should_kill(self, host: str) -> bool:
        """Take SIGKILL on this document fetch?"""
        return host == self._domain and self._armed(self.kill_domains)

    def on_allocation(self, count: int) -> None:
        """Allocation-boundary hook: seeded MemoryError, exactly once
        per armed epoch, at the same allocation in every run."""
        if (self._armed(self.memerr_domains)
                and count == self.memerr_at_allocation):
            raise MemoryError(
                "injected allocator failure at allocation %d (proc "
                "chaos, %s epoch %d)" % (count, self._domain, self._epoch)
            )

    def pipe_noise(self, domain: str, epoch: Optional[int]) -> List[bytes]:
        """Noise messages to write to the result pipe before the real
        frame: seeded garbage and/or a torn valid-frame prefix."""
        if epoch is None or not 1 <= epoch <= self.epoch_limit:
            return []
        noise: List[bytes] = []
        if domain in self.garbage_domains:
            noise.append(_seeded_bytes(self.seed, domain, epoch,
                                       "garbage", 64))
        if domain in self.truncate_domains:
            body = _seeded_bytes(self.seed, domain, epoch, "torn", 48)
            frame = ipc.encode_frame(body)
            # A worker dying mid-write: header plus half the payload.
            noise.append(frame[: ipc.FRAME_HEADER_LEN + len(body) // 2])
        return noise

    # -- parent side ---------------------------------------------------

    def check_spawn(self) -> None:
        """Consume one injected spawn failure, if any remain."""
        if self.spawn_failures > 0:
            self.spawn_failures -= 1
            raise OSError(11, "injected fork failure (proc chaos)")


class ProcChaosSource:
    """A WebSource wrapper carrying a :class:`ProcChaosPlan`.

    The plan rides into worker processes on the web source (the one
    object the survey already ships to workers); the worker loop finds
    it via the ``proc_chaos`` attribute.  ``respond`` performs the
    SIGKILL injection at the document-fetch boundary — the same
    boundary :class:`repro.net.chaos.ChaosSource` crashes at, but via
    the signal a real OOM kill delivers.
    """

    def __init__(self, inner, plan: ProcChaosPlan) -> None:
        self._inner = inner
        self.proc_chaos = plan

    def __getattr__(self, name: str):
        if name == "_inner":
            # During unpickling __getattr__ runs before __init__ has
            # set _inner; without this guard the lookup recurses.
            raise AttributeError(name)
        return getattr(self._inner, name)

    def respond(self, request: Request) -> Optional[Response]:
        if (request.kind == ResourceKind.DOCUMENT
                and self.proc_chaos.should_kill(request.url.host)):
            os.kill(os.getpid(), signal.SIGKILL)
        return self._inner.respond(request)

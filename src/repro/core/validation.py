"""Section 6: validating the monkey-testing methodology.

* **Internal validation (Table 3)** — how many standards does each
  successive automated visit round discover that earlier rounds
  missed?  The paper stops at five rounds because round 5 finds
  (essentially) nothing new.
* **External validation (Figure 9)** — a human-style browsing session
  on ~100 traffic-weighted sites, compared against the automated
  measurements of the same domains: on most sites the monkey saw
  everything the human saw; a few outliers (login walls, hover menus,
  media flows) show standards only the human reached.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.blocking.extension import BrowsingCondition
from repro.browser.browser import Browser
from repro.core.survey import SurveyResult
from repro.monkey.crawler import CrawlConfig, SiteCrawler
from repro.monkey.gremlins import MonkeyConfig
from repro.net.fetcher import Fetcher
from repro.seeding import derive_seed
from repro.webgen.sitegen import SyntheticWeb


# ---------------------------------------------------------------------------
# Internal validation (Table 3)
# ---------------------------------------------------------------------------

def internal_validation(
    result: SurveyResult, condition: str = BrowsingCondition.DEFAULT
) -> List[Tuple[int, float]]:
    """Average new standards per round, rounds 2..N (Table 3)."""
    domains = result.measured_domains(condition)
    if not domains:
        return []
    rows: List[Tuple[int, float]] = []
    for round_index in range(2, result.visits_per_site + 1):
        total_new = sum(
            len(
                result.measurement(condition, domain).new_standards_in_round(
                    round_index
                )
            )
            for domain in domains
        )
        rows.append((round_index, total_new / len(domains)))
    return rows


# ---------------------------------------------------------------------------
# External validation (Figure 9)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExternalValidationOutcome:
    """Histogram of new-standards-during-manual-interaction counts."""

    sites_compared: int
    histogram: Dict[int, int]  # new standards -> number of domains

    @property
    def zero_fraction(self) -> float:
        if not self.sites_compared:
            return 0.0
        return self.histogram.get(0, 0) / self.sites_compared


class ManualSession:
    """A simulated human browsing session (section 6.2).

    90 seconds per site: the home page, then a prominent link, then
    another — reading, scrolling, clicking deliberately.  Structurally
    it is a narrower, shallower crawl (3 pages, fewer events); on sites
    with human-only functionality (login walls, hover-menus, players)
    the human additionally reaches standards the monkey cannot — the
    ``manual_only`` ground truth the web generator planted.
    """

    def __init__(self, web: SyntheticWeb, seed: int = 9090) -> None:
        self._web = web
        self._seed = seed

    def standards_seen(self, domain: str) -> Set[str]:
        fetcher = Fetcher(self._web)
        browser = Browser(self._web.registry, fetcher)
        crawl = CrawlConfig(
            links_per_page=1,
            depth=2,  # home + one link + one more = 3 pages
            monkey=MonkeyConfig(events_per_page=10),
        )
        crawler = SiteCrawler(browser, crawl, condition="manual")
        visit = crawler.visit_site(
            domain, round_index=1, seed=derive_seed(self._seed, domain)
        )
        standards: Set[str] = set()
        registry = self._web.registry
        for feature in visit.features_used():
            standards.add(registry.standard_of(feature))
        site = self._web.sites.get(domain)
        if site is not None:
            standards.update(site.plan.manual_only)
        return standards


def external_validation(
    result: SurveyResult,
    web: SyntheticWeb,
    n_target: int = 100,
    n_completed: int = 92,
    seed: int = 2626,
    condition: str = BrowsingCondition.DEFAULT,
) -> ExternalValidationOutcome:
    """Compare manual sessions against the automated crawl (Figure 9).

    Samples ``n_target`` distinct sites weighted by traffic, drops the
    ones a human reviewer would skip (the paper omitted pornographic
    and non-English sites, ending at 92), runs a manual session on
    each, and histograms the number of standards the manual session
    saw that the automated crawl did not.
    """
    rng = random.Random(seed)
    candidates = [
        d for d in web.ranking.sample_by_traffic(rng, n_target)
        if d in set(result.domains)
        and result.measurement(condition, d).measured
    ]
    kept = candidates[:n_completed]
    session = ManualSession(web, seed=seed)
    histogram: Dict[int, int] = {}
    for domain in kept:
        manual = session.standards_seen(domain)
        automated = result.measurement(condition, domain).standards_used()
        new = len(manual - automated)
        histogram[new] = histogram.get(new, 0) + 1
    return ExternalValidationOutcome(
        sites_compared=len(kept), histogram=dict(sorted(histogram.items()))
    )

"""Framed worker IPC: checksummed, versioned result-pipe frames.

The parallel crawl ships site results from worker processes to the
supervisor over per-slot pipes.  ``multiprocessing.Connection`` gives
message boundaries, but nothing protects the *content*: a worker dying
mid-write, a buggy allocator scribbling on a buffer, or an injected
fault (``repro.core.procchaos``) can put garbage or a torn prefix on
the pipe, and a raw ``pickle.loads`` of that poisons the supervisor —
the one process that must survive anything a worker does.

Every message is therefore wrapped in a **frame**:

    MAGIC(4) | version(1) | kind(1) | length(4, BE) | crc32(4, BE) | payload

The CRC covers the version, kind and length fields plus the payload,
so a bit flip anywhere in the frame (header included) fails the
checksum instead of mis-framing the stream.  :class:`FrameDecoder`
recovers from damage by **resynchronizing**: on any corruption it
records a typed :class:`FrameCorruption` and rescans from the next
byte for the magic marker, so a valid frame following (or embedded
after) a corrupt region is still decoded.  Corruption is *reported,
never raised* — the decoder cannot throw on hostile bytes.

Two consumption modes:

* streaming (default) — an incomplete frame tail stays buffered until
  more bytes arrive; :meth:`FrameDecoder.finish` flushes it at EOF,
  reporting the torn tail and salvaging any whole frames inside it.
* message-aligned (``message_aligned=True``, the supervisor's mode) —
  every ``feed`` is one ``recv_bytes`` message and legitimate senders
  never split a frame across messages, so a tail left over after a
  feed is *known* garbage and is resynchronized away immediately.
  Nothing can sit half-decoded forever waiting for bytes that will
  never come.
"""

from __future__ import annotations

import zlib
from typing import List, NamedTuple

__all__ = [
    "FRAME_HEADER_LEN",
    "Frame",
    "FrameCorruption",
    "FrameDecoder",
    "KIND_FAULT",
    "KIND_METRICS",
    "KIND_RESULT",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "encode_frame",
]

#: frame marker; chosen to be vanishingly unlikely in pickled payloads
MAGIC = b"RFRM"

#: bump on any incompatible frame-layout change
PROTOCOL_VERSION = 1

#: a successful site measurement (the payload is a pickled result tuple)
KIND_RESULT = 1
#: a typed worker fault report (pickled dict; see survey's worker loop)
KIND_FAULT = 2
#: a worker metrics snapshot (pickled dict; merged in the supervisor).
#: Decoders that predate this kind ignore unknown kinds, so the frame
#: is backward-safe on the wire.
KIND_METRICS = 3

#: magic + version + kind + length + crc32
FRAME_HEADER_LEN = 14

#: ceiling on a single frame's payload.  Real payloads (measurement +
#: trace tree) are a few MB at most; anything larger is a corrupt or
#: hostile length field and is treated as such without buffering it.
MAX_FRAME_BYTES = 1 << 30


class Frame(NamedTuple):
    kind: int
    payload: bytes


class FrameCorruption(Exception):
    """One detected frame-stream defect (collected, never raised).

    ``reason`` is a stable slug the tests and reports key on:

    * ``bad-magic`` — bytes before (or instead of) a frame marker
    * ``bad-version`` — a marker carrying an unknown protocol version
    * ``oversize`` — a length field past :data:`MAX_FRAME_BYTES`
    * ``bad-crc`` — checksum mismatch (any bit flip lands here)
    * ``truncated`` — the stream ended (or a message boundary passed)
      inside a frame
    """

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__("%s: %s" % (reason, detail))
        self.reason = reason
        self.detail = detail


def encode_frame(payload: bytes, kind: int = KIND_RESULT) -> bytes:
    """Wrap one payload in a checksummed frame."""
    if not 0 <= kind <= 0xFF:
        raise ValueError("frame kind %r out of range" % (kind,))
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            "payload of %d bytes exceeds the %d-byte frame cap"
            % (len(payload), MAX_FRAME_BYTES)
        )
    head = (
        bytes((PROTOCOL_VERSION, kind))
        + len(payload).to_bytes(4, "big")
    )
    crc = zlib.crc32(head + payload) & 0xFFFFFFFF
    return MAGIC + head + crc.to_bytes(4, "big") + payload


def _magic_prefix_len(buf: bytes) -> int:
    """Length of the longest proper MAGIC prefix ending the buffer.

    Streaming mode must keep ``...RF`` around — the ``RM`` completing
    the marker may be in the next chunk.
    """
    for keep in range(min(len(buf), len(MAGIC) - 1), 0, -1):
        if buf[-keep:] == MAGIC[:keep]:
            return keep
    return 0


class FrameDecoder:
    """Incremental frame parser with corruption recovery.

    Feed it bytes as they arrive; it returns whole frames and records
    every defect in :attr:`errors` (drain with :meth:`take_errors`).
    It never raises on input bytes, whatever they contain.
    """

    def __init__(
        self,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        message_aligned: bool = False,
    ) -> None:
        self.max_frame_bytes = max_frame_bytes
        self.message_aligned = message_aligned
        self._buffer = bytearray()
        #: accumulated :class:`FrameCorruption` records, oldest first
        self.errors: List[FrameCorruption] = []
        self.frames_decoded = 0
        self.bytes_discarded = 0

    # -- feeding -------------------------------------------------------

    def feed(self, data: bytes) -> List[Frame]:
        """Absorb ``data``; return every frame it completed."""
        self._buffer.extend(data)
        frames = self._drain(flush=False)
        if self.message_aligned and self._buffer:
            # A legitimate sender puts exactly whole frames in each
            # message, so a leftover tail is a torn or garbage frame —
            # resynchronize now rather than let it absorb (and hide)
            # the next message's good frames.
            frames.extend(self._drain(flush=True))
        return frames

    def finish(self) -> List[Frame]:
        """The stream ended: flush the tail, salvaging whole frames."""
        return self._drain(flush=True)

    def take_errors(self) -> List[FrameCorruption]:
        """Drain and return the accumulated corruption records."""
        errors, self.errors = self.errors, []
        return errors

    # -- internals -----------------------------------------------------

    def _note(self, reason: str, detail: str, dropped: int = 0) -> None:
        self.bytes_discarded += dropped
        self.errors.append(FrameCorruption(reason, detail))

    def _drain(self, flush: bool) -> List[Frame]:
        frames: List[Frame] = []
        while True:
            frame = self._next_frame(flush)
            if frame is None:
                break
            frames.append(frame)
        return frames

    def _next_frame(self, flush: bool) -> "Frame | None":
        buf = self._buffer
        while True:
            start = buf.find(MAGIC)
            if start == -1:
                # No marker: discard the garbage, keeping a possible
                # marker prefix split across chunks — in streaming mode
                # the rest may still arrive; at flush a retained prefix
                # is a marker the stream tore through.
                keep = _magic_prefix_len(bytes(buf))
                drop = len(buf) - keep
                if drop:
                    self._note("bad-magic",
                               "%d byte(s) with no frame marker" % drop,
                               dropped=drop)
                    del buf[:drop]
                if flush and buf:
                    self._note("truncated",
                               "stream ended inside a frame marker",
                               dropped=len(buf))
                    del buf[:]
                return None
            if start:
                self._note("bad-magic",
                           "%d byte(s) before the frame marker" % start,
                           dropped=start)
                del buf[:start]
            if len(buf) < FRAME_HEADER_LEN:
                if flush:
                    self._note("truncated",
                               "stream ended inside a frame header",
                               dropped=len(buf))
                    del buf[:]
                return None
            version = buf[4]
            length = int.from_bytes(buf[6:10], "big")
            crc = int.from_bytes(buf[10:14], "big")
            if version != PROTOCOL_VERSION:
                self._note("bad-version",
                           "protocol version %d (this build speaks %d)"
                           % (version, PROTOCOL_VERSION), dropped=1)
                del buf[:1]  # resync: rescan from inside the bad frame
                continue
            if length > self.max_frame_bytes:
                self._note("oversize",
                           "declared payload of %d bytes exceeds the "
                           "%d-byte cap" % (length, self.max_frame_bytes),
                           dropped=1)
                del buf[:1]
                continue
            total = FRAME_HEADER_LEN + length
            if len(buf) < total:
                if not flush:
                    return None  # wait for the rest of the frame
                self._note("truncated",
                           "stream ended %d byte(s) into a %d-byte frame"
                           % (len(buf), total), dropped=1)
                del buf[:1]  # a whole frame may hide inside the tail
                continue
            payload = bytes(buf[FRAME_HEADER_LEN:total])
            computed = zlib.crc32(bytes(buf[4:10]) + payload) & 0xFFFFFFFF
            if computed != crc:
                self._note("bad-crc",
                           "checksum mismatch on a %d-byte frame"
                           % length, dropped=1)
                del buf[:1]
                continue
            kind = buf[5]
            del buf[:total]
            self.frames_decoded += 1
            return Frame(kind=kind, payload=payload)

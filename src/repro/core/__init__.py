"""The paper's primary contribution: the feature-usage survey.

* :mod:`repro.core.survey` — orchestrates the full crawl: every site,
  every browsing condition, five rounds each, through the instrumented
  browser.
* :mod:`repro.core.metrics` — the paper's section 5.1 definitions:
  feature popularity, standard popularity, block rate, site complexity.
* :mod:`repro.core.analysis` — one function per table and figure of the
  evaluation (Figures 1, 3-9; Tables 1-2; headline statistics).
* :mod:`repro.core.validation` — section 6: internal (Table 3) and
  external (Figure 9) validation of the monkey-testing methodology.
* :mod:`repro.core.reporting` — renders the analyses as paper-style
  text tables and plot-ready series.
* :mod:`repro.core.charts` — SVG renderings of the figures.
* :mod:`repro.core.export` — CSV datasets for every table and figure.
* :mod:`repro.core.persistence` — save/load crawls as JSON.
* :mod:`repro.core.comparison` — the automated paper-vs-measured
  scorecard (100+ checks).
* :mod:`repro.core.debloat` — least-privilege feature policies built
  from the measurements (section 7.2 turned into a tool).
"""

__all__ = ["SurveyConfig", "SurveyResult", "run_survey"]

_LAZY = {"SurveyConfig", "SurveyResult", "run_survey"}


def __getattr__(name):
    # Lazy re-exports (PEP 562): importing the package must stay cheap
    # and cycle-free, because low layers (minijs, dom, net) import
    # repro.core.sandbox — eagerly importing the survey here would pull
    # the whole pipeline back in underneath them.
    if name in _LAZY:
        from repro.core import survey

        return getattr(survey, name)
    raise AttributeError(
        "module %r has no attribute %r" % (__name__, name)
    )

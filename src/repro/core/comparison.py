"""Automated paper-vs-measured comparison.

EXPERIMENTS.md narrates the comparison for one reference run; this
module *computes* it for any run: every published quantity the
reproduction targets, the measured value, and a pass/fail against a
shape tolerance.  ``python -m repro compare`` prints the scorecard;
``tests/test_comparison.py`` keeps the suite honest by asserting the
scorecard stays green at fixture scale.

Tolerances are deliberately wide for popularity fractions (a scaled
synthetic crawl is a noisy estimator) and exact for structural
quantities (feature counts, CVE counts) that no amount of crawling
noise may change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.blocking.extension import BrowsingCondition
from repro.core import analysis, metrics
from repro.core.survey import SurveyResult
from repro.standards.catalog import all_standards

#: Absolute tolerance for site-fraction comparisons.
POPULARITY_TOLERANCE = 0.18
#: Absolute tolerance for block-rate comparisons.
BLOCK_RATE_TOLERANCE = 0.25
#: Standards rarer than this (paper fraction) are skipped for rate
#: comparisons — a handful of sites decide them at small scale.
RARITY_FLOOR = 0.02


@dataclass(frozen=True)
class ComparisonRow:
    """One checked claim."""

    metric: str
    paper: str
    measured: str
    ok: bool
    note: str = ""


def compare_to_paper(result: SurveyResult) -> List[ComparisonRow]:
    """The full scorecard for a survey result."""
    rows: List[ComparisonRow] = []
    rows.extend(_structural_rows(result))
    rows.extend(_headline_rows(result))
    rows.extend(_standard_rows(result))
    rows.extend(_validation_rows(result))
    return rows


def _row(metric: str, paper: str, measured: str, ok: bool,
         note: str = "") -> ComparisonRow:
    return ComparisonRow(metric=metric, paper=paper, measured=measured,
                         ok=ok, note=note)


def _structural_rows(result: SurveyResult) -> List[ComparisonRow]:
    registry = result.registry
    rows = [
        _row("features instrumented", "1392",
             str(registry.feature_count()),
             registry.feature_count() == 1392),
        _row("standards identified", "75",
             str(registry.standard_count()),
             registry.standard_count() == 75),
    ]
    # CVE join: exact for every standard.
    from repro.standards.cves import build_cve_corpus, cves_by_standard

    counts = cves_by_standard(build_cve_corpus())
    mismatches = [
        s.abbrev for s in all_standards()
        if counts.get(s.abbrev, 0) != s.cves
    ]
    rows.append(
        _row("CVE attribution (111 mapped)", "exact per standard",
             "exact" if not mismatches else "mismatch: %s" % mismatches[:3],
             not mismatches)
    )
    return rows


def _headline_rows(result: SurveyResult) -> List[ComparisonRow]:
    stats = analysis.headline_feature_statistics(result)
    measured = len(result.measured_domains(BrowsingCondition.DEFAULT))
    total = len(result.domains)
    measurable = measured / max(1, total)
    rows = [
        _row("domains measurable", "97.3%", "%.1f%%" % (100 * measurable),
             0.90 <= measurable <= 1.0),
        _row("features never used", "49.5%",
             "%.1f%%" % (100 * stats.never_used_fraction),
             0.45 <= stats.never_used_fraction <= 0.85,
             "small webs shift rare features into this bucket"),
        _row("features on <1% of sites", "79%",
             "%.1f%%" % (100 * stats.under_one_percent_fraction),
             stats.under_one_percent_fraction >= 0.60),
        _row("features on <1% with blocking", "83%",
             "%.1f%%" % (100 * stats.blocked_under_one_percent_fraction),
             stats.blocked_under_one_percent_fraction
             >= stats.under_one_percent_fraction),
        _row("features blocked >90%", "~10%",
             "%.1f%%" % (100 * stats.blocked_over_90_features
                         / stats.total_features),
             stats.blocked_over_90_features > 0,
             "direction only: a blocked core exists"),
        _row("standards never used", ">=11", str(stats.never_used_standards),
             stats.never_used_standards >= 11),
        _row("standards at <=1%", "28", str(stats.under_one_percent_standards),
             stats.under_one_percent_standards >= 20),
    ]
    return rows


def _standard_rows(result: SurveyResult) -> List[ComparisonRow]:
    rows: List[ComparisonRow] = []
    measured = max(1, len(result.measured_domains(BrowsingCondition.DEFAULT)))
    counts = metrics.standard_site_counts(result, BrowsingCondition.DEFAULT)
    rates = (
        metrics.standard_block_rates(result)
        if BrowsingCondition.BLOCKING in result.conditions
        else {}
    )
    for spec in all_standards():
        if not spec.in_table2 or spec.never_used:
            continue
        fraction = counts[spec.abbrev] / measured
        ok = abs(fraction - spec.popularity) <= POPULARITY_TOLERANCE
        rows.append(
            _row("popularity %s" % spec.abbrev,
                 "%.1f%%" % (100 * spec.popularity),
                 "%.1f%%" % (100 * fraction), ok)
        )
        if spec.popularity < RARITY_FLOOR:
            continue
        rate = rates.get(spec.abbrev)
        if rate is None:
            continue
        ok = abs(rate - spec.block_rate) <= BLOCK_RATE_TOLERANCE
        rows.append(
            _row("block rate %s" % spec.abbrev,
                 "%.1f%%" % (100 * spec.block_rate),
                 "%.1f%%" % (100 * rate), ok)
        )
    return rows


def _validation_rows(result: SurveyResult) -> List[ComparisonRow]:
    from repro.core.validation import internal_validation

    rows: List[ComparisonRow] = []
    table3 = internal_validation(result)
    if len(table3) >= 2:
        values = [v for _, v in table3]
        declining = values[0] >= values[-1]
        rows.append(
            _row("round discovery declines (Table 3)",
                 "1.56 -> 0.00",
                 " -> ".join("%.2f" % v for v in values),
                 declining and values[-1] <= 0.5)
        )
    return rows


def scorecard(result: SurveyResult) -> Tuple[int, int]:
    """(passing rows, total rows)."""
    rows = compare_to_paper(result)
    return sum(1 for r in rows if r.ok), len(rows)


def render_comparison(rows: List[ComparisonRow],
                      failures_only: bool = False) -> str:
    """A text scorecard."""
    from repro.core.reporting import render_table

    body = [
        (
            "PASS" if row.ok else "FAIL",
            row.metric,
            row.paper,
            row.measured,
            row.note,
        )
        for row in rows
        if not failures_only or not row.ok
    ]
    passing = sum(1 for r in rows if r.ok)
    table = render_table(
        ("", "Metric", "Paper", "Measured", "Note"), body
    )
    return "%s\n\n%d/%d checks pass" % (table, passing, len(rows))

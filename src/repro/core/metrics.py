"""The paper's section 5.1 measurement definitions.

* **feature popularity** — the fraction of (measured) sites that use a
  feature at least once during automated interaction.
* **standard popularity** — the fraction of sites using at least one of
  the standard's features.
* **block rate** — of the sites that used the standard (feature) in the
  default condition, the fraction on which it never executes once
  blocking extensions are installed.
* **site complexity** — the number of distinct standards a site uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.blocking.extension import BrowsingCondition
from repro.core.survey import SurveyResult


def feature_site_counts(
    result: SurveyResult, condition: str
) -> Dict[str, int]:
    """feature -> number of sites using it (0 for never-used)."""
    sites = result.feature_sites(condition)
    counts = {f.name: 0 for f in result.registry.features()}
    for name, domains in sites.items():
        counts[name] = len(domains)
    return counts


def standard_site_counts(
    result: SurveyResult, condition: str
) -> Dict[str, int]:
    """standard -> number of sites using it (0 for never-used)."""
    return {
        abbrev: len(domains)
        for abbrev, domains in result.standard_sites(condition).items()
    }


def feature_popularity(
    result: SurveyResult, condition: str
) -> Dict[str, float]:
    """feature -> fraction of measured sites using it."""
    measured = max(1, len(result.measured_domains(condition)))
    return {
        name: count / measured
        for name, count in feature_site_counts(result, condition).items()
    }


def standard_popularity(
    result: SurveyResult, condition: str
) -> Dict[str, float]:
    """standard -> fraction of measured sites using it."""
    measured = max(1, len(result.measured_domains(condition)))
    return {
        abbrev: count / measured
        for abbrev, count in standard_site_counts(result, condition).items()
    }


def standard_block_rates(
    result: SurveyResult,
    blocking_condition: str = BrowsingCondition.BLOCKING,
    default_condition: str = BrowsingCondition.DEFAULT,
) -> Dict[str, Optional[float]]:
    """standard -> block rate (None when the standard is never used).

    Only sites measured under *both* conditions participate, matching
    the paper's given-used-by-default conditional.
    """
    default_sites = result.standard_sites(default_condition)
    blocking_sites = result.standard_sites(blocking_condition)
    common = set(result.measured_domains(default_condition)) & set(
        result.measured_domains(blocking_condition)
    )
    rates: Dict[str, Optional[float]] = {}
    for abbrev in default_sites:
        used_default = default_sites[abbrev] & common
        if not used_default:
            rates[abbrev] = None
            continue
        still_used = blocking_sites.get(abbrev, set()) & used_default
        rates[abbrev] = 1.0 - len(still_used) / len(used_default)
    return rates


def feature_block_rates(
    result: SurveyResult,
    blocking_condition: str = BrowsingCondition.BLOCKING,
    default_condition: str = BrowsingCondition.DEFAULT,
) -> Dict[str, Optional[float]]:
    """feature -> block rate (None when never used by default)."""
    default_sites = result.feature_sites(default_condition)
    blocking_sites = result.feature_sites(blocking_condition)
    common = set(result.measured_domains(default_condition)) & set(
        result.measured_domains(blocking_condition)
    )
    rates: Dict[str, Optional[float]] = {}
    for feature in result.registry.features():
        used_default = default_sites.get(feature.name, set()) & common
        if not used_default:
            rates[feature.name] = None
            continue
        still = blocking_sites.get(feature.name, set()) & used_default
        rates[feature.name] = 1.0 - len(still) / len(used_default)
    return rates


def site_complexity(
    result: SurveyResult, condition: str
) -> Dict[str, int]:
    """domain -> number of distinct standards used (section 5.9)."""
    return {
        domain: len(result.measurement(condition, domain).standards_used())
        for domain in result.measured_domains(condition)
    }


def traffic_weighted_standard_popularity(
    result: SurveyResult, condition: str
) -> Dict[str, float]:
    """standard -> fraction of *site visits* that use it (Figure 5)."""
    measured = result.measured_domains(condition)
    total_weight = sum(result.visit_weights[d] for d in measured)
    if total_weight <= 0:
        return {s.abbrev: 0.0 for s in result.registry.standards()}
    weighted: Dict[str, float] = {}
    standard_sites = result.standard_sites(condition)
    for abbrev, domains in standard_sites.items():
        weight = sum(
            result.visit_weights[d] for d in domains if d in set(measured)
        )
        weighted[abbrev] = weight / total_weight
    return weighted

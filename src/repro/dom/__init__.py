"""The DOM substrate: HTML parsing, the node tree, events, JS bindings.

Pages in the synthetic web are HTML documents.  The browser parses them
with :mod:`repro.dom.html` into a :class:`repro.dom.node.DomNode` tree,
wraps nodes in MiniJS objects whose prototype chains come from the
WebIDL registry (:mod:`repro.dom.bindings`), and routes user interaction
through :mod:`repro.dom.events` (capturing both ``addEventListener``
registrations and legacy DOM0 ``onclick``-style handlers — the paper
notes the latter cannot be observed by the measuring extension, and in
this substrate they indeed bypass all instrumented features).
"""

from repro.dom.node import DomNode, TEXT_NODE, ELEMENT_NODE
from repro.dom.html import parse_html, HtmlParseError
from repro.dom.events import EventManager
from repro.dom.bindings import DomRealm

__all__ = [
    "DomNode",
    "TEXT_NODE",
    "ELEMENT_NODE",
    "parse_html",
    "HtmlParseError",
    "EventManager",
    "DomRealm",
]

"""A forgiving HTML parser producing :class:`DomNode` trees.

Real pages are malformed; a crawler's parser must not be strict.  This
parser recovers from unclosed tags, stray close tags and unquoted
attributes, and treats ``<script>`` contents as raw text (the browser
later executes them).

Two severities remain:

* **strict** (``parse_html(text)``) — genuinely hopeless input (an
  unterminated ``<script`` open tag at EOF, a truncated ``<script>``
  element) raises :class:`HtmlParseError`.  This is the mode analysis
  tools and round-trip tests want: garbage should be loud.
* **recovering** (``parse_html(text, recover=True)`` /
  :func:`parse_html_lenient`) — *never* raises.  Truncated raw-text
  elements keep their tail as content, an unterminated open tag drops
  the tail, and stray control bytes are stripped before parsing — the
  way a browser renders whatever survived a dropped connection.  The
  crawl uses this mode by default and records each salvage kind as a
  structured degraded cause on the page visit.

On well-formed input the two modes produce identical trees (the
recovery branches only run where strict mode would have raised).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.dom.node import DomNode, ELEMENT_NODE, TEXT_NODE, VOID_TAGS


class HtmlParseError(ValueError):
    """Unrecoverably malformed HTML (strict mode only)."""


_ATTR_RE = re.compile(
    r"""([a-zA-Z_:][-a-zA-Z0-9_:.]*)\s*(?:=\s*("[^"]*"|'[^']*'|[^\s>]+))?"""
)

#: C0 control characters that are not HTML whitespace (plus DEL).
#: Real markup never contains them; line noise and mis-decoded bytes
#: do, and they would otherwise end up inside text nodes and script
#: bodies.
_CONTROL_RE = re.compile(
    "[\x00-\x08\x0b\x0e-\x1f\x7f]"
)

_RAW_TEXT_TAGS = ("script", "style")


def parse_html(text: str, recover: bool = False) -> DomNode:
    """Parse an HTML document into a tree rooted at ``<html>``.

    Always returns a root with ``head`` and ``body`` children, creating
    them when the document omits them — matching how browsers normalize
    documents before scripts run.  With ``recover=True`` the parse
    never raises (see :func:`parse_html_lenient`, which also reports
    *what* was salvaged).
    """
    if recover:
        root, _ = parse_html_lenient(text)
        return root
    return _parse(text, None)


def parse_html_lenient(text: str) -> Tuple[DomNode, List[str]]:
    """Browser-grade recovering parse: never raises.

    Returns ``(root, recovery_kinds)`` where ``recovery_kinds`` lists
    what had to be salvaged, in the order encountered:

    * ``"control-chars"`` — non-whitespace control bytes stripped;
    * ``"unterminated-script"`` / ``"unterminated-style"`` — a raw-text
      element ran to EOF without its close tag; the tail became its
      content;
    * ``"unterminated-tag"`` — an open tag ran to EOF without ``>``;
      the tail was dropped.

    An empty list means strict mode would have parsed the document to
    the identical tree.
    """
    kinds: List[str] = []
    cleaned = _CONTROL_RE.sub("", text)
    if cleaned != text:
        kinds.append("control-chars")
    root = _parse(cleaned, kinds)
    return root, kinds


def _parse(text: str, kinds: Optional[List[str]]) -> DomNode:
    """The parser core; ``kinds`` None = strict (raise), else recover."""
    root = DomNode(ELEMENT_NODE, "html")
    stack: List[DomNode] = [root]
    pos = 0
    length = len(text)

    def current() -> DomNode:
        return stack[-1]

    while pos < length:
        lt = text.find("<", pos)
        if lt == -1:
            _append_text(current(), text[pos:])
            break
        if lt > pos:
            _append_text(current(), text[pos:lt])
        if text.startswith("<!--", lt):
            end = text.find("-->", lt + 4)
            if end == -1:
                break  # unterminated comment: drop the tail
            pos = end + 3
            continue
        if text.startswith("<!", lt):  # doctype and friends
            end = text.find(">", lt)
            if end == -1:
                break
            pos = end + 1
            continue
        if text.startswith("</", lt):
            end = text.find(">", lt)
            if end == -1:
                break
            tag = text[lt + 2:end].strip().lower()
            _close_tag(stack, tag)
            pos = end + 1
            continue
        try:
            tag, attrs, self_closing, end = _read_open_tag(text, lt)
        except HtmlParseError:
            if kinds is None:
                raise
            # The document ends inside an open tag (truncated mid-tag):
            # everything from here is tag soup, drop it.
            kinds.append("unterminated-tag")
            break
        if tag is None:
            _append_text(current(), "<")
            pos = lt + 1
            continue
        node = DomNode(ELEMENT_NODE, tag, attrs)
        if tag == "html":
            # Merge attributes onto the existing root instead of nesting.
            root.attributes.update(attrs)
            pos = end
            continue
        current().append_child(node)
        pos = end
        if tag in _RAW_TEXT_TAGS and not self_closing:
            close = "</%s>" % tag
            close_at = text.lower().find(close, pos)
            if close_at == -1:
                if kinds is None:
                    raise HtmlParseError(
                        "unterminated <%s> element" % tag
                    )
                # Truncated mid-element: the tail is the element's
                # content, the way browsers treat an EOF inside a
                # script.  (The compiler decides whether the fragment
                # still runs.)
                kinds.append("unterminated-%s" % tag)
                raw = text[pos:]
                if raw:
                    node.append_child(DomNode(TEXT_NODE, text=raw))
                break
            raw = text[pos:close_at]
            if raw:
                node.append_child(DomNode(TEXT_NODE, text=raw))
            pos = close_at + len(close)
            continue
        if not self_closing and tag not in VOID_TAGS:
            stack.append(node)

    _ensure_structure(root)
    return root


def _append_text(parent: DomNode, raw: str) -> None:
    if raw.strip():
        parent.append_child(DomNode(TEXT_NODE, text=raw))


def _close_tag(stack: List[DomNode], tag: str) -> None:
    """Pop to the matching open tag; ignore stray close tags."""
    for index in range(len(stack) - 1, 0, -1):
        if stack[index].tag == tag:
            del stack[index:]
            return


def _read_open_tag(
    text: str, lt: int
) -> Tuple[Optional[str], Dict[str, str], bool, int]:
    """Parse ``<tag attr=...>`` starting at ``lt``.

    Returns (tag, attributes, self_closing, position-after-``>``); tag is
    None when the ``<`` does not begin a tag (left angle in prose).
    """
    match = re.compile(r"<([a-zA-Z][-a-zA-Z0-9]*)").match(text, lt)
    if match is None:
        return None, {}, False, lt + 1
    tag = match.group(1).lower()
    pos = match.end()
    gt = text.find(">", pos)
    if gt == -1:
        raise HtmlParseError("unterminated <%s> open tag" % tag)
    inner = text[pos:gt]
    self_closing = inner.rstrip().endswith("/")
    if self_closing:
        inner = inner.rstrip()[:-1]
    attrs: Dict[str, str] = {}
    for attr_match in _ATTR_RE.finditer(inner):
        name = attr_match.group(1).lower()
        value = attr_match.group(2)
        if value is None:
            attrs[name] = ""
        elif value[:1] in "\"'":
            attrs[name] = value[1:-1]
        else:
            attrs[name] = value
    return tag, attrs, self_closing, gt + 1


def _ensure_structure(root: DomNode) -> None:
    """Guarantee <head> and <body> exist and own stray content."""
    head = None
    body = None
    for child in list(root.children):
        if child.node_type == ELEMENT_NODE and child.tag == "head":
            head = child
        elif child.node_type == ELEMENT_NODE and child.tag == "body":
            body = child
    if head is None:
        head = DomNode(ELEMENT_NODE, "head")
        root.children.insert(0, head)
        head.parent = root
    if body is None:
        body = DomNode(ELEMENT_NODE, "body")
        root.append_child(body)
    # Re-home top-level strays (text or elements outside head/body).
    for child in list(root.children):
        if child in (head, body):
            continue
        root.children.remove(child)
        child.parent = None
        body.append_child(child)

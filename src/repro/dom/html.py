"""A forgiving HTML parser producing :class:`DomNode` trees.

Real pages are malformed; a crawler's parser must not be strict.  This
parser recovers from unclosed tags, stray close tags and unquoted
attributes, and treats ``<script>`` contents as raw text (the browser
later executes them).  Only genuinely hopeless input (e.g. an
unterminated ``<script`` open tag at EOF) raises
:class:`HtmlParseError`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.dom.node import DomNode, ELEMENT_NODE, TEXT_NODE, VOID_TAGS


class HtmlParseError(ValueError):
    """Unrecoverably malformed HTML."""


_ATTR_RE = re.compile(
    r"""([a-zA-Z_:][-a-zA-Z0-9_:.]*)\s*(?:=\s*("[^"]*"|'[^']*'|[^\s>]+))?"""
)

_RAW_TEXT_TAGS = ("script", "style")


def parse_html(text: str) -> DomNode:
    """Parse an HTML document into a tree rooted at ``<html>``.

    Always returns a root with ``head`` and ``body`` children, creating
    them when the document omits them — matching how browsers normalize
    documents before scripts run.
    """
    root = DomNode(ELEMENT_NODE, "html")
    stack: List[DomNode] = [root]
    pos = 0
    length = len(text)

    def current() -> DomNode:
        return stack[-1]

    while pos < length:
        lt = text.find("<", pos)
        if lt == -1:
            _append_text(current(), text[pos:])
            break
        if lt > pos:
            _append_text(current(), text[pos:lt])
        if text.startswith("<!--", lt):
            end = text.find("-->", lt + 4)
            if end == -1:
                break  # unterminated comment: drop the tail
            pos = end + 3
            continue
        if text.startswith("<!", lt):  # doctype and friends
            end = text.find(">", lt)
            if end == -1:
                break
            pos = end + 1
            continue
        if text.startswith("</", lt):
            end = text.find(">", lt)
            if end == -1:
                break
            tag = text[lt + 2:end].strip().lower()
            _close_tag(stack, tag)
            pos = end + 1
            continue
        tag, attrs, self_closing, end = _read_open_tag(text, lt)
        if tag is None:
            _append_text(current(), "<")
            pos = lt + 1
            continue
        node = DomNode(ELEMENT_NODE, tag, attrs)
        if tag == "html":
            # Merge attributes onto the existing root instead of nesting.
            root.attributes.update(attrs)
            pos = end
            continue
        current().append_child(node)
        pos = end
        if tag in _RAW_TEXT_TAGS and not self_closing:
            close = "</%s>" % tag
            close_at = text.lower().find(close, pos)
            if close_at == -1:
                raise HtmlParseError("unterminated <%s> element" % tag)
            raw = text[pos:close_at]
            if raw:
                node.append_child(DomNode(TEXT_NODE, text=raw))
            pos = close_at + len(close)
            continue
        if not self_closing and tag not in VOID_TAGS:
            stack.append(node)

    _ensure_structure(root)
    return root


def _append_text(parent: DomNode, raw: str) -> None:
    if raw.strip():
        parent.append_child(DomNode(TEXT_NODE, text=raw))


def _close_tag(stack: List[DomNode], tag: str) -> None:
    """Pop to the matching open tag; ignore stray close tags."""
    for index in range(len(stack) - 1, 0, -1):
        if stack[index].tag == tag:
            del stack[index:]
            return


def _read_open_tag(
    text: str, lt: int
) -> Tuple[Optional[str], Dict[str, str], bool, int]:
    """Parse ``<tag attr=...>`` starting at ``lt``.

    Returns (tag, attributes, self_closing, position-after-``>``); tag is
    None when the ``<`` does not begin a tag (left angle in prose).
    """
    match = re.compile(r"<([a-zA-Z][-a-zA-Z0-9]*)").match(text, lt)
    if match is None:
        return None, {}, False, lt + 1
    tag = match.group(1).lower()
    pos = match.end()
    gt = text.find(">", pos)
    if gt == -1:
        raise HtmlParseError("unterminated <%s> open tag" % tag)
    inner = text[pos:gt]
    self_closing = inner.rstrip().endswith("/")
    if self_closing:
        inner = inner.rstrip()[:-1]
    attrs: Dict[str, str] = {}
    for attr_match in _ATTR_RE.finditer(inner):
        name = attr_match.group(1).lower()
        value = attr_match.group(2)
        if value is None:
            attrs[name] = ""
        elif value[:1] in "\"'":
            attrs[name] = value[1:-1]
        else:
            attrs[name] = value
    return tag, attrs, self_closing, gt + 1


def _ensure_structure(root: DomNode) -> None:
    """Guarantee <head> and <body> exist and own stray content."""
    head = None
    body = None
    for child in list(root.children):
        if child.node_type == ELEMENT_NODE and child.tag == "head":
            head = child
        elif child.node_type == ELEMENT_NODE and child.tag == "body":
            body = child
    if head is None:
        head = DomNode(ELEMENT_NODE, "head")
        root.children.insert(0, head)
        head.parent = root
    if body is None:
        body = DomNode(ELEMENT_NODE, "body")
        root.append_child(body)
    # Re-home top-level strays (text or elements outside head/body).
    for child in list(root.children):
        if child in (head, body):
            continue
        root.children.remove(child)
        child.parent = None
        body.append_child(child)

"""The DOM node tree (engine side, independent of MiniJS wrappers)."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

ELEMENT_NODE = 1
TEXT_NODE = 3

#: Tags that never have children and need no closing tag.
VOID_TAGS = frozenset(
    ["br", "img", "meta", "link", "input", "hr", "area", "base", "col",
     "embed", "param", "source", "track", "wbr"]
)

#: Tags a user can plausibly interact with (monkey-testing targets).
INTERACTIVE_TAGS = frozenset(
    ["a", "button", "input", "select", "textarea", "form", "label", "div",
     "span", "li", "img"]
)

#: The active visit's budget meter (see :mod:`repro.core.sandbox`),
#: charged one DOM node per attach.  Module-level rather than a per-node
#: slot: a crawl process runs one page visit at a time, and hot-path
#: tree edits must not pay an extra attribute on every node.  Installed
#: by the browser around each page visit; ``None`` costs one global
#: read per attach.
_DOM_METER = None


def install_dom_meter(meter):
    """Install the visit's budget meter; returns the previous one."""
    global _DOM_METER
    previous = _DOM_METER
    _DOM_METER = meter
    return previous


class DomNode:
    """One node of the document tree.

    The same object backs both the engine's view (parsing, event
    dispatch, crawling) and the MiniJS wrapper's ``host_data``.
    """

    __slots__ = (
        "node_type", "tag", "attributes", "children", "parent", "text",
        "listeners", "wrapper", "compiled_attr_handlers",
    )

    def __init__(
        self,
        node_type: int = ELEMENT_NODE,
        tag: str = "",
        attributes: Optional[Dict[str, str]] = None,
        text: str = "",
    ) -> None:
        self.node_type = node_type
        self.tag = tag.lower()
        self.attributes: Dict[str, str] = dict(attributes or {})
        self.children: List[DomNode] = []
        self.parent: Optional[DomNode] = None
        self.text = text
        #: event type -> list of MiniJS handler functions
        self.listeners: Dict[str, List[Any]] = {}
        #: cached MiniJS wrapper (set by the bindings layer)
        self.wrapper: Any = None
        #: event type -> compiled DOM0 attribute handler (lazy cache)
        self.compiled_attr_handlers: Dict[str, Any] = {}

    # -- tree editing -------------------------------------------------------

    def append_child(self, child: "DomNode") -> "DomNode":
        if _DOM_METER is not None:
            _DOM_METER.charge_dom_node()
        if child.parent is not None:
            child.parent.remove_child(child)
        child.parent = self
        self.children.append(child)
        return child

    def insert_before(
        self, child: "DomNode", reference: Optional["DomNode"]
    ) -> "DomNode":
        if _DOM_METER is not None:
            _DOM_METER.charge_dom_node()
        if child.parent is not None:
            child.parent.remove_child(child)
        child.parent = self
        if reference is None or reference not in self.children:
            self.children.append(child)
        else:
            self.children.insert(self.children.index(reference), child)
        return child

    def remove_child(self, child: "DomNode") -> "DomNode":
        if child in self.children:
            self.children.remove(child)
            child.parent = None
        return child

    def clone(self, deep: bool = False) -> "DomNode":
        copy = DomNode(self.node_type, self.tag, dict(self.attributes),
                       self.text)
        if deep:
            for child in self.children:
                copy.append_child(child.clone(deep=True))
        return copy

    # -- queries ------------------------------------------------------------

    @property
    def id(self) -> str:
        return self.attributes.get("id", "")

    @property
    def class_list(self) -> List[str]:
        return self.attributes.get("class", "").split()

    def walk(self) -> Iterator["DomNode"]:
        """Depth-first traversal including self."""
        yield self
        for child in self.children:
            yield from child.walk()

    def elements(self) -> Iterator["DomNode"]:
        for node in self.walk():
            if node.node_type == ELEMENT_NODE:
                yield node

    def find_first(self, tag: str) -> Optional["DomNode"]:
        for node in self.elements():
            if node.tag == tag:
                return node
        return None

    def find_all(self, tag: str) -> List["DomNode"]:
        return [n for n in self.elements() if n.tag == tag]

    def get_element_by_id(self, element_id: str) -> Optional["DomNode"]:
        for node in self.elements():
            if node.id == element_id:
                return node
        return None

    def matches_selector(self, selector: str) -> bool:
        """Match one simple selector: ``tag``, ``#id``, ``.class``,
        ``tag.class`` or ``tag#id``."""
        selector = selector.strip()
        if not selector or self.node_type != ELEMENT_NODE:
            return False
        tag_part = ""
        rest = selector
        if selector[0] not in "#.":
            for i, ch in enumerate(selector):
                if ch in "#.":
                    tag_part, rest = selector[:i], selector[i:]
                    break
            else:
                tag_part, rest = selector, ""
        if tag_part and tag_part != "*" and self.tag != tag_part.lower():
            return False
        while rest:
            marker, rest = rest[0], rest[1:]
            name = ""
            for i, ch in enumerate(rest):
                if ch in "#.":
                    name, rest = rest[:i], rest[i:]
                    break
            else:
                name, rest = rest, ""
            if marker == "#" and self.id != name:
                return False
            if marker == "." and name not in self.class_list:
                return False
        return True

    def query_selector_all(self, selector: str) -> List["DomNode"]:
        """Simple selector list matching (comma-separated alternatives)."""
        alternatives = [s.strip() for s in selector.split(",") if s.strip()]
        found: List[DomNode] = []
        for node in self.elements():
            if any(node.matches_selector(alt) for alt in alternatives):
                found.append(node)
        return found

    def text_content(self) -> str:
        parts: List[str] = []
        for node in self.walk():
            if node.node_type == TEXT_NODE:
                parts.append(node.text)
        return "".join(parts)

    def outer_html(self) -> str:
        """Re-serialize the subtree to HTML."""
        if self.node_type == TEXT_NODE:
            return self.text
        attrs = "".join(
            ' %s="%s"' % (k, v) for k, v in self.attributes.items()
        )
        if self.tag in VOID_TAGS:
            return "<%s%s>" % (self.tag, attrs)
        inner = "".join(c.outer_html() for c in self.children)
        return "<%s%s>%s</%s>" % (self.tag, attrs, inner, self.tag)

    def __repr__(self) -> str:
        if self.node_type == TEXT_NODE:
            snippet = self.text[:20]
            return "<#text %r>" % snippet
        return "<%s%s children=%d>" % (
            self.tag,
            "#" + self.id if self.id else "",
            len(self.children),
        )

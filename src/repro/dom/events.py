"""Event dispatch for the simulated DOM.

Two registration paths exist, as on the real web:

* ``EventTarget.prototype.addEventListener`` — an instrumented DOM2-E
  feature; listeners land in ``DomNode.listeners``.
* legacy DOM0 handlers — assigning a function to an ``on<type>``
  property of an element wrapper.  The paper points out its extension
  cannot observe these registrations on non-singleton objects
  (section 4.2.3); here too they are plain property writes that touch
  no instrumented feature.

Dispatch bubbles from the target to the root, running ``capture``-less
listeners and DOM0 handlers at each node.  Handler exceptions are
recorded, not propagated — a broken handler must not abort the crawl,
just as a page's broken handler does not crash Firefox.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.sandbox import heartbeat
from repro.dom.node import DomNode
from repro.minijs.errors import MiniJSError, StepLimitExceeded
from repro.minijs.interpreter import Interpreter
from repro.minijs.objects import JSFunction, JSObject, UNDEFINED


class EventManager:
    """Dispatches events into a page's MiniJS realm."""

    def __init__(self, interpreter: Interpreter) -> None:
        self._interp = interpreter
        self.dispatched = 0
        self.handler_errors: List[str] = []

    def make_event(self, event_type: str, target_wrapper: Any) -> JSObject:
        """Build a minimal Event object."""
        event = self._interp.new_object("Event")
        event.properties["type"] = event_type
        event.properties["target"] = (
            target_wrapper if target_wrapper is not None else UNDEFINED
        )
        event.properties["bubbles"] = True
        event.properties["defaultPrevented"] = False

        def prevent_default(interp: Interpreter, this: Any, args: List[Any]):
            if isinstance(this, JSObject):
                this.properties["defaultPrevented"] = True
            return UNDEFINED

        def stop_propagation(interp: Interpreter, this: Any, args: List[Any]):
            if isinstance(this, JSObject):
                this.properties["_stopped"] = True
            return UNDEFINED

        event.properties["preventDefault"] = self._interp.host_function(
            "preventDefault", prevent_default
        )
        event.properties["stopPropagation"] = self._interp.host_function(
            "stopPropagation", stop_propagation
        )
        return event

    def dispatch(self, node: DomNode, event_type: str) -> JSObject:
        """Fire an event at a node and bubble it to the root.

        Returns the event object (callers can check defaultPrevented to
        decide whether e.g. a link click should navigate).
        """
        self.dispatched += 1
        # Monkey testing fires hundreds of events per page; each
        # dispatch signals liveness to the crawl watchdog, and the
        # visit deadline is re-checked so a hostile page cannot hide a
        # stall between handlers.
        heartbeat()
        meter = self._interp.meter
        if meter is not None:
            meter.check_deadline()
        event = self.make_event(event_type, node.wrapper)
        current: Optional[DomNode] = node
        while current is not None:
            self._run_handlers(current, event_type, event)
            if event.properties.get("_stopped"):
                break
            current = current.parent
        # Document-level listeners live on the document wrapper's node —
        # already reached via the root's parent chain if wired; handled
        # by the realm wiring the root's parent to the document node.
        return event

    def _run_handlers(
        self, node: DomNode, event_type: str, event: JSObject
    ) -> None:
        wrapper = node.wrapper
        handlers: List[Any] = list(node.listeners.get(event_type, ()))
        if isinstance(wrapper, JSObject):
            dom0 = wrapper.properties.get("on" + event_type)
            if isinstance(dom0, JSFunction):
                handlers.append(dom0)
        attr_handler = self._attribute_handler(node, event_type)
        if attr_handler is not None:
            handlers.append(attr_handler)
        for handler in handlers:
            if not isinstance(handler, JSFunction):
                continue
            try:
                self._interp.call_function(handler, wrapper, [event])
            except StepLimitExceeded:
                raise
            except MiniJSError as error:
                self.handler_errors.append(str(error))
            # BudgetExceeded is deliberately not a MiniJSError: a
            # handler that blows the *site* budget falls through this
            # recovery and aborts the visit into a partial measurement.

    def _attribute_handler(
        self, node: DomNode, event_type: str
    ) -> Optional[JSFunction]:
        """Compile an ``onclick="..."`` attribute into a handler (lazily).

        This is the HTML-attribute flavor of DOM0 registration: the
        attribute body becomes the handler function's body, compiled on
        first dispatch like a real browser does.  An unparseable body
        yields a permanently inert handler (recorded once).
        """
        source = node.attributes.get("on" + event_type)
        if not source:
            return None
        cached = node.compiled_attr_handlers.get(event_type)
        if cached is not None:
            return cached if isinstance(cached, JSFunction) else None
        # Content-addressed compilation: ten "onclick=trackClick()"
        # buttons across ten pages share one parse; only the per-realm
        # JSFunction wrapper (closure over this realm's globals) is
        # built per node.
        from repro.minijs.compile import compile_source

        try:
            program = compile_source(source)
        except MiniJSError as error:
            self.handler_errors.append(
                "bad on%s attribute: %s" % (event_type, error)
            )
            node.compiled_attr_handlers[event_type] = False
            return None
        handler = JSFunction(
            name="on%s" % event_type,
            params=["event"],
            body=program.body,
            closure=self._interp.global_env,
            function_prototype=self._interp.function_prototype,
        )
        node.compiled_attr_handlers[event_type] = handler
        return handler

"""DOM bindings: expose the WebIDL feature surface to MiniJS.

:class:`DomRealm` turns one parsed HTML document plus one MiniJS
interpreter into a live page realm:

* every registry interface gets a global constructor and a prototype
  object, chained per the WebIDL inheritance graph — so the measuring
  extension can shim ``Interface.prototype.member`` exactly as the
  paper's extension does in Firefox;
* feature methods are host functions: a behavioral implementation for
  the core DOM surface (createElement, querySelector, appendChild,
  addEventListener, getContext, Storage, XHR, ...) and an inert stub for
  the long tail — both equally instrumentable, because instrumentation
  wraps whatever sits on the prototype;
* the singleton globals (``window`` — which *is* the global object —
  ``document``, ``navigator``, ``screen``, ``history``, ``location``,
  ``performance``, ``crypto``, ``localStorage``) are instances of their
  interfaces, so property-write features are observable via ``watch``;
* a virtual timer queue models setTimeout/setInterval/rAF so pages can
  schedule work the browser then flushes.

Stub host functions are stateless and shared across realms (a pure
speed optimization; instrumentation never mutates them, only the
per-realm prototype slots that point at them).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.sandbox import BudgetExceeded
from repro.dom.events import EventManager
from repro.dom.node import DomNode, ELEMENT_NODE
from repro.minijs.errors import MiniJSError
from repro.minijs.interpreter import Interpreter
from repro.minijs.objects import (
    JSArray,
    JSFunction,
    JSObject,
    NULL,
    UNDEFINED,
    to_string,
)
from repro.webidl.registry import Feature, FeatureRegistry

#: HTML tag -> wrapper interface.
TAG_INTERFACES: Dict[str, str] = {
    "canvas": "HTMLCanvasElement",
    "video": "HTMLVideoElement",
    "audio": "HTMLAudioElement",
    "input": "HTMLInputElement",
    "a": "HTMLAnchorElement",
    "img": "HTMLImageElement",
    "table": "HTMLTableElement",
    "textarea": "HTMLTextAreaElement",
    "button": "HTMLButtonElement",
    "iframe": "HTMLIFrameElement",
    "script": "HTMLScriptElement",
    "link": "HTMLLinkElement",
    "meta": "HTMLMetaElement",
    "ol": "HTMLOListElement",
    "label": "HTMLLabelElement",
    "fieldset": "HTMLFieldSetElement",
    "object": "HTMLObjectElement",
    "map": "HTMLMapElement",
    "area": "HTMLAreaElement",
    "tr": "HTMLTableRowElement",
    "td": "HTMLTableCellElement",
    "th": "HTMLTableCellElement",
    "svg": "SVGSVGElement",
    "form": "HTMLFormElement",
}

#: Singleton interface -> global variable name (mirrors the corpus map).
SINGLETONS: Dict[str, str] = {
    "Window": "window",
    "Document": "document",
    "Navigator": "navigator",
    "Screen": "screen",
    "History": "history",
    "Location": "location",
    "Performance": "performance",
    "Crypto": "crypto",
    "Storage": "localStorage",
}

# Shared inert stubs, keyed by feature name (see module docstring).
_STUB_CACHE: Dict[str, JSFunction] = {}


def _stub_for(feature_name: str) -> JSFunction:
    stub = _STUB_CACHE.get(feature_name)
    if stub is None:
        stub = JSFunction(
            name=feature_name.rsplit(".", 1)[-1],
            host_call=lambda interp, this, args: UNDEFINED,
        )
        _STUB_CACHE[feature_name] = stub
    return stub


#: registry id -> (instance member templates, static member templates):
#: interface -> {member: shared stub}.  Realms bulk-copy these instead of
#: looping over all 1,392 features per page load.
_MEMBER_TEMPLATES: Dict[int, Tuple[dict, dict]] = {}


def _member_templates(registry: FeatureRegistry) -> Tuple[dict, dict]:
    key = id(registry)
    cached = _MEMBER_TEMPLATES.get(key)
    if cached is not None:
        return cached
    instance: Dict[str, Dict[str, JSFunction]] = {}
    static: Dict[str, Dict[str, JSFunction]] = {}
    for feature in registry.features():
        if feature.kind != "method":
            continue  # attributes are plain data properties
        bucket = static if feature.static else instance
        bucket.setdefault(feature.interface, {})[feature.member] = _stub_for(
            feature.name
        )
    _MEMBER_TEMPLATES.clear()  # one registry at a time is the norm
    _MEMBER_TEMPLATES[key] = (instance, static)
    return instance, static


class Timer:
    """One scheduled callback."""

    __slots__ = ("fire_at", "fn", "interval", "timer_id", "cancelled")

    def __init__(self, fire_at: float, fn: Any, interval: Optional[float],
                 timer_id: int) -> None:
        self.fire_at = fire_at
        self.fn = fn
        self.interval = interval
        self.timer_id = timer_id
        self.cancelled = False


class DomRealm:
    """A live page: document tree + MiniJS realm + DOM bindings."""

    def __init__(
        self,
        registry: FeatureRegistry,
        root: DomNode,
        seed: int = 0,
        url: str = "http://example.com/",
        network_hook: Optional[Callable[[str, str], None]] = None,
        step_limit: Optional[int] = None,
        storage: Optional[Dict[str, str]] = None,
        meter: Optional[Any] = None,
        engine: str = "compiled",
    ) -> None:
        from repro.minijs.codegen import (
            flush_inline_caches,
            interpreter_class,
        )

        # Compiled-code inline caches pin the previous realm's
        # prototype graph; cross-realm hits are impossible (fresh
        # prototype identities per realm), so flush them here and let
        # the collector reclaim the dead page promptly.
        flush_inline_caches()
        kwargs = {} if step_limit is None else {"step_limit": step_limit}
        self.interp = interpreter_class(engine)(seed=seed, **kwargs)
        # Site-level resource budgets (repro.core.sandbox): the meter
        # spans the whole visit and rides on the interpreter so every
        # script, handler and timer in this realm charges against it.
        self.interp.meter = meter
        self.registry = registry
        self.url = url
        self.network_hook = network_hook or (lambda url, kind: None)
        # localStorage: the caller (browser) passes the origin's shared
        # jar so values persist across the pages of a visit; standalone
        # realms get a private one.
        self.storage: Dict[str, str] = (
            storage if storage is not None else {}
        )
        self.timers: List[Timer] = []
        #: Page-level errors raised by timer callbacks (stringified
        #: MiniJS errors, including step-limit exhaustion); the browser
        #: folds these into the visit's script_errors.
        self.timer_errors: List[str] = []
        self._timer_seq = 0
        self.prototypes: Dict[str, JSObject] = {}
        self.constructors: Dict[str, JSFunction] = {}
        #: feature names with per-realm behavioral implementations (the
        #: measuring extension must wrap these individually).
        self.behavior_features: set = set()

        # Document node: parent of <html>, target of document-level events.
        self.document_node = DomNode(ELEMENT_NODE, "#document")
        self.document_node.append_child(root)
        self.root = root

        self.events = EventManager(self.interp)
        self._build_interfaces()
        self._install_singletons()
        self._install_behaviors()
        self._install_page_utilities()

    # ------------------------------------------------------------------
    # Interface construction
    # ------------------------------------------------------------------

    def _build_interfaces(self) -> None:
        interp = self.interp
        # Pass 1: prototype objects.
        for name in self.registry.interfaces():
            self.prototypes[name] = JSObject(class_name=name)
        # Pass 2: chain them.
        for name, proto in self.prototypes.items():
            parent = self.registry.interface(name).parent
            if parent and parent in self.prototypes:
                proto.prototype = self.prototypes[parent]
            else:
                proto.prototype = interp.object_prototype
        # Window.prototype backs the global object itself.
        window_proto = self.prototypes.get("Window")
        if window_proto is not None:
            interp.global_object.prototype = window_proto
            interp.global_object.class_name = "Window"
        # Pass 3: constructors + members (bulk-copied from templates).
        instance_members, static_members = _member_templates(self.registry)
        for name, proto in self.prototypes.items():
            members = instance_members.get(name)
            if members:
                proto.properties.update(members)
            ctor = self._make_constructor(name, proto)
            statics = static_members.get(name)
            if statics:
                ctor.properties.update(statics)
            self.constructors[name] = ctor
            interp.global_object.properties[name] = ctor

    def _make_constructor(self, name: str, proto: JSObject) -> JSFunction:
        def construct(interp: Interpreter, this: Any, args: List[Any]) -> Any:
            # `new Interface()` runs through Interpreter.construct, which
            # already allocated `this` with the right prototype; returning
            # undefined keeps that instance.
            return UNDEFINED

        ctor = JSFunction(
            name=name,
            host_call=construct,
            function_prototype=self.interp.function_prototype,
        )
        ctor.properties["prototype"] = proto
        proto.properties["constructor"] = ctor
        return ctor

    def new_instance(self, interface: str) -> JSObject:
        """Allocate an instance of an interface (engine-side `new`)."""
        proto = self.prototypes.get(interface, self.interp.object_prototype)
        return JSObject(prototype=proto, class_name=interface)

    # ------------------------------------------------------------------
    # Node wrappers
    # ------------------------------------------------------------------

    def wrap(self, node: DomNode) -> JSObject:
        """The MiniJS wrapper for a DOM node (cached per node)."""
        if node.wrapper is not None:
            return node.wrapper
        if node is self.document_node:
            interface = "Document"
        elif node.node_type == ELEMENT_NODE:
            interface = TAG_INTERFACES.get(node.tag, "HTMLElement")
            if interface not in self.prototypes:
                interface = "Element"
        else:
            interface = "Text"
        if interface not in self.prototypes:
            interface = "Node" if "Node" in self.prototypes else "Element"
        wrapper = self.new_instance(interface)
        wrapper.host_data = node
        node.wrapper = wrapper
        return wrapper

    def node_of(self, value: Any) -> Optional[DomNode]:
        if isinstance(value, JSObject) and isinstance(value.host_data, DomNode):
            return value.host_data
        return None

    # ------------------------------------------------------------------
    # Singletons
    # ------------------------------------------------------------------

    def _install_singletons(self) -> None:
        interp = self.interp
        g = interp.global_object
        self.singletons: Dict[str, JSObject] = {}

        document = self.wrap(self.document_node)
        self.singletons["Document"] = document
        g.properties["document"] = document

        for interface, global_name in SINGLETONS.items():
            if interface in ("Window", "Document"):
                continue
            if interface not in self.prototypes:
                # Browser plumbing outside the instrumented surface
                # (e.g. Location): synthesize a bare interface so the
                # global still exists the way pages expect.
                proto = JSObject(
                    prototype=interp.object_prototype, class_name=interface
                )
                self.prototypes[interface] = proto
                ctor = self._make_constructor(interface, proto)
                self.constructors[interface] = ctor
                g.properties[interface] = ctor
            instance = self.new_instance(interface)
            self.singletons[interface] = instance
            g.properties[global_name] = instance

        # window, self: the global object itself.
        g.properties["window"] = g
        g.properties["self"] = g
        self.singletons["Window"] = g

        # Handy non-feature data properties pages expect to exist.
        body = self.root.find_first("body")
        head = self.root.find_first("head")
        if body is not None:
            document.properties["body"] = self.wrap(body)
        if head is not None:
            document.properties["head"] = self.wrap(head)
        document.properties["documentElement"] = self.wrap(self.root)
        navigator = self.singletons.get("Navigator")
        if navigator is not None:
            navigator.properties["userAgent"] = (
                "Mozilla/5.0 (X11; Linux x86_64; rv:46.0) Gecko/20100101 "
                "Firefox/46.0"
            )
        location = self.singletons.get("Location")
        if location is not None:
            location.properties["href"] = self.url

    def singleton_for(self, interface: str) -> Optional[JSObject]:
        return self.singletons.get(interface)

    # ------------------------------------------------------------------
    # Behavioral feature implementations
    # ------------------------------------------------------------------

    def _behavior(self, feature_name: str,
                  fn: Callable[[Interpreter, Any, List[Any]], Any]) -> None:
        """Install a behavioral host implementation for a feature."""
        if feature_name not in self.registry:
            return
        feature = self.registry.feature(feature_name)
        target = (
            self.constructors[feature.interface]
            if feature.static
            else self.prototypes[feature.interface]
        )
        target.properties[feature.member] = self.interp.host_function(
            feature.member, fn
        )
        self.behavior_features.add(feature_name)

    def _install_behaviors(self) -> None:
        realm = self

        def this_node(this: Any) -> Optional[DomNode]:
            return realm.node_of(this)

        def arg_node(args: List[Any], index: int) -> Optional[DomNode]:
            if index < len(args):
                return realm.node_of(args[index])
            return None

        # --- Document ---------------------------------------------------
        def create_element(interp, this, args):
            tag = to_string(args[0]) if args else "div"
            node = DomNode(ELEMENT_NODE, tag)
            return realm.wrap(node)

        def create_text_node(interp, this, args):
            from repro.dom.node import TEXT_NODE

            node = DomNode(TEXT_NODE, text=to_string(args[0]) if args else "")
            return realm.wrap(node)

        def get_element_by_id(interp, this, args):
            element_id = to_string(args[0]) if args else ""
            node = realm.root.get_element_by_id(element_id)
            return realm.wrap(node) if node is not None else NULL

        def query_selector(interp, this, args):
            selector = to_string(args[0]) if args else "*"
            scope = this_node(this) or realm.root
            found = scope.query_selector_all(selector)
            return realm.wrap(found[0]) if found else NULL

        def query_selector_all(interp, this, args):
            selector = to_string(args[0]) if args else "*"
            scope = this_node(this) or realm.root
            found = scope.query_selector_all(selector)
            return interp.new_array([realm.wrap(n) for n in found])

        self._behavior("Document.prototype.createElement", create_element)
        self._behavior("Document.prototype.createTextNode", create_text_node)
        self._behavior("Document.prototype.getElementById", get_element_by_id)
        for owner in ("Document", "Element", "DocumentFragment"):
            self._behavior(
                "%s.prototype.querySelector" % owner, query_selector
            )
            self._behavior(
                "%s.prototype.querySelectorAll" % owner, query_selector_all
            )

        # --- Node tree editing -------------------------------------------
        def append_child(interp, this, args):
            parent = this_node(this)
            child = arg_node(args, 0)
            if parent is not None and child is not None:
                parent.append_child(child)
            return args[0] if args else UNDEFINED

        def insert_before(interp, this, args):
            parent = this_node(this)
            child = arg_node(args, 0)
            reference = arg_node(args, 1)
            if parent is not None and child is not None:
                parent.insert_before(child, reference)
            return args[0] if args else UNDEFINED

        def remove_child(interp, this, args):
            parent = this_node(this)
            child = arg_node(args, 0)
            if parent is not None and child is not None:
                parent.remove_child(child)
            return args[0] if args else UNDEFINED

        def replace_child(interp, this, args):
            parent = this_node(this)
            new_child = arg_node(args, 0)
            old_child = arg_node(args, 1)
            if parent is not None and new_child is not None and (
                old_child is not None
            ):
                parent.insert_before(new_child, old_child)
                parent.remove_child(old_child)
            return args[1] if len(args) > 1 else UNDEFINED

        def clone_node(interp, this, args):
            node = this_node(this)
            if node is None:
                return NULL
            from repro.minijs.objects import to_boolean

            deep = to_boolean(args[0]) if args else False
            return realm.wrap(node.clone(deep=deep))

        def has_child_nodes(interp, this, args):
            node = this_node(this)
            return bool(node is not None and node.children)

        def contains(interp, this, args):
            node = this_node(this)
            other = arg_node(args, 0)
            if node is None or other is None:
                return False
            return any(candidate is other for candidate in node.walk())

        self._behavior("Node.prototype.appendChild", append_child)
        self._behavior("Node.prototype.insertBefore", insert_before)
        self._behavior("Node.prototype.removeChild", remove_child)
        self._behavior("Node.prototype.replaceChild", replace_child)
        self._behavior("Node.prototype.cloneNode", clone_node)
        self._behavior("Node.prototype.hasChildNodes", has_child_nodes)
        self._behavior("Node.prototype.contains", contains)

        # --- Element attributes -------------------------------------------
        def get_attribute(interp, this, args):
            node = this_node(this)
            name = to_string(args[0]) if args else ""
            if node is None or name not in node.attributes:
                return NULL
            return node.attributes[name]

        def set_attribute(interp, this, args):
            node = this_node(this)
            if node is not None and len(args) >= 2:
                node.attributes[to_string(args[0])] = to_string(args[1])
            return UNDEFINED

        def remove_attribute(interp, this, args):
            node = this_node(this)
            if node is not None and args:
                node.attributes.pop(to_string(args[0]), None)
            return UNDEFINED

        def matches(interp, this, args):
            node = this_node(this)
            if node is None or not args:
                return False
            return node.matches_selector(to_string(args[0]))

        def closest(interp, this, args):
            node = this_node(this)
            if node is None or not args:
                return NULL
            selector = to_string(args[0])
            current = node
            while current is not None:
                if current.matches_selector(selector):
                    return realm.wrap(current)
                current = current.parent
            return NULL

        def insert_adjacent_html(interp, this, args):
            node = this_node(this)
            if node is None or len(args) < 2:
                return UNDEFINED
            from repro.dom.html import HtmlParseError, parse_html

            position = to_string(args[0]).lower()
            try:
                fragment_root = parse_html(to_string(args[1]))
            except HtmlParseError:
                return UNDEFINED
            body = fragment_root.find_first("body")
            children = list(body.children) if body is not None else []
            for child in children:
                if position == "beforeend":
                    node.append_child(child)
                elif position == "afterbegin":
                    node.insert_before(
                        child, node.children[0] if node.children else None
                    )
                elif position == "beforebegin" and node.parent is not None:
                    node.parent.insert_before(child, node)
                elif position == "afterend" and node.parent is not None:
                    siblings = node.parent.children
                    index = siblings.index(node)
                    reference = (
                        siblings[index + 1]
                        if index + 1 < len(siblings) else None
                    )
                    node.parent.insert_before(child, reference)
            return UNDEFINED

        self._behavior("Element.prototype.getAttribute", get_attribute)
        self._behavior("Element.prototype.setAttribute", set_attribute)
        self._behavior("Element.prototype.removeAttribute", remove_attribute)
        self._behavior("Element.prototype.matches", matches)
        self._behavior("Element.prototype.closest", closest)
        self._behavior(
            "Element.prototype.insertAdjacentHTML", insert_adjacent_html
        )

        # --- Events --------------------------------------------------------
        def add_event_listener(interp, this, args):
            node = this_node(this)
            target_node = node or realm.document_node
            if len(args) >= 2 and isinstance(args[1], JSFunction):
                event_type = to_string(args[0])
                target_node.listeners.setdefault(event_type, []).append(
                    args[1]
                )
            return UNDEFINED

        def remove_event_listener(interp, this, args):
            node = this_node(this) or realm.document_node
            if len(args) >= 2:
                event_type = to_string(args[0])
                handlers = node.listeners.get(event_type, [])
                if args[1] in handlers:
                    handlers.remove(args[1])
            return UNDEFINED

        def dispatch_event(interp, this, args):
            node = this_node(this) or realm.document_node
            if args and isinstance(args[0], JSObject):
                event_type = to_string(args[0].get("type"))
                realm.events.dispatch(node, event_type)
            return True

        def create_event(interp, this, args):
            return realm.events.make_event("", NULL)

        self._behavior(
            "EventTarget.prototype.addEventListener", add_event_listener
        )
        self._behavior(
            "EventTarget.prototype.removeEventListener", remove_event_listener
        )
        self._behavior("EventTarget.prototype.dispatchEvent", dispatch_event)
        self._behavior("Document.prototype.createEvent", create_event)

        # Document and Element inherit the EventTarget surface in real
        # browsers; here the prototype chains don't join EventTarget, so
        # mirror the behaviors where pages actually call them — but only
        # when those features exist on the mirrored interface.  (They do
        # not in this corpus, so addEventListener lives on EventTarget
        # and pages reach it through generic instances; element-level
        # registration uses DOM0 handlers, which is what the synthetic
        # web emits anyway.)

        # --- Canvas ---------------------------------------------------------
        def get_context(interp, this, args):
            return realm.new_instance("CanvasRenderingContext2D")

        self._behavior("HTMLCanvasElement.prototype.getContext", get_context)

        def to_data_url(interp, this, args):
            return "data:image/png;base64,iVBORw0KGgo="

        self._behavior("HTMLCanvasElement.prototype.toDataURL", to_data_url)

        # --- Storage ---------------------------------------------------------
        def storage_get(interp, this, args):
            key = to_string(args[0]) if args else ""
            value = realm.storage.get(key)
            return NULL if value is None else value

        def storage_set(interp, this, args):
            if len(args) >= 2:
                realm.storage[to_string(args[0])] = to_string(args[1])
            return UNDEFINED

        def storage_remove(interp, this, args):
            if args:
                realm.storage.pop(to_string(args[0]), None)
            return UNDEFINED

        def storage_clear(interp, this, args):
            realm.storage.clear()
            return UNDEFINED

        def storage_key(interp, this, args):
            from repro.minijs.objects import to_int

            index = to_int(args[0], -1) if args else 0
            keys = list(realm.storage)
            return keys[index] if 0 <= index < len(keys) else NULL

        self._behavior("Storage.prototype.getItem", storage_get)
        self._behavior("Storage.prototype.setItem", storage_set)
        self._behavior("Storage.prototype.removeItem", storage_remove)
        self._behavior("Storage.prototype.clear", storage_clear)
        self._behavior("Storage.prototype.key", storage_key)

        # --- Network-touching features ---------------------------------------
        def xhr_open(interp, this, args):
            if isinstance(this, JSObject) and len(args) >= 2:
                this.properties["_url"] = to_string(args[1])
            return UNDEFINED

        def xhr_send(interp, this, args):
            if isinstance(this, JSObject):
                url = this.properties.get("_url")
                if isinstance(url, str):
                    realm.network_hook(url, "xhr")
            return UNDEFINED

        def fetch(interp, this, args):
            if args:
                realm.network_hook(to_string(args[0]), "fetch")
            return realm.interp.new_object("Promise")

        def send_beacon(interp, this, args):
            if args:
                realm.network_hook(to_string(args[0]), "beacon")
            return True

        self._behavior("XMLHttpRequest.prototype.open", xhr_open)
        self._behavior("XMLHttpRequest.prototype.send", xhr_send)
        self._behavior("Window.prototype.fetch", fetch)
        self._behavior("Navigator.prototype.sendBeacon", send_beacon)

        # --- Timing ------------------------------------------------------------
        def performance_now(interp, this, args):
            return interp.clock_ms % 1_000_000

        self._behavior("Performance.prototype.now", performance_now)

        def request_animation_frame(interp, this, args):
            if args and isinstance(args[0], JSFunction):
                realm.schedule(args[0], delay_ms=16.0)
            realm._timer_seq += 1
            return float(realm._timer_seq)

        self._behavior(
            "Window.prototype.requestAnimationFrame", request_animation_frame
        )

        # --- Misc -----------------------------------------------------------
        def get_computed_style(interp, this, args):
            return realm.new_instance("CSSStyleDeclaration")

        self._behavior("Window.prototype.getComputedStyle", get_computed_style)

        def get_selection(interp, this, args):
            return realm.new_instance("Selection")

        self._behavior("Window.prototype.getSelection", get_selection)
        self._behavior("Document.prototype.getSelection", get_selection)

        def get_random_values(interp, this, args):
            if args and isinstance(args[0], JSArray):
                for i in range(len(args[0].elements)):
                    args[0].elements[i] = float(interp.rng.randrange(256))
            return args[0] if args else UNDEFINED

        self._behavior("Crypto.prototype.getRandomValues", get_random_values)

        def bounding_rect(interp, this, args):
            rect = interp.new_object("DOMRect")
            for prop, value in (
                ("top", 0.0), ("left", 0.0), ("width", 100.0),
                ("height", 20.0),
            ):
                rect.properties[prop] = value
            return rect

        self._behavior(
            "Element.prototype.getBoundingClientRect", bounding_rect
        )

    # ------------------------------------------------------------------
    # Page utilities (not features: plain browser plumbing)
    # ------------------------------------------------------------------

    def _install_page_utilities(self) -> None:
        interp = self.interp
        realm = self

        def timer_callable(fn: Any) -> Optional[JSFunction]:
            """A schedulable handler: a function, or a string body.

            String bodies — ``setTimeout("poll()", 500)``, the
            eval-style legacy form — are compiled through the shared
            content-addressed cache, so a page re-arming the same
            string every tick parses it exactly once per process.
            """
            if isinstance(fn, JSFunction):
                return fn
            if isinstance(fn, str) and fn.strip():
                from repro.minijs.compile import compile_source
                from repro.minijs.errors import JSLexError, JSParseError

                try:
                    program = compile_source(fn)
                except (JSLexError, JSParseError):
                    return None  # real browsers throw at fire time; we drop
                return JSFunction(
                    name="timeout",
                    params=[],
                    body=program.body,
                    closure=interp.global_env,
                    function_prototype=interp.function_prototype,
                )
            return None

        def set_timeout(interp_, this, args):
            fn = timer_callable(args[0] if args else UNDEFINED)
            from repro.minijs.objects import to_int

            delay = float(to_int(args[1])) if len(args) > 1 else 0.0
            if fn is not None:
                return float(realm.schedule(fn, delay_ms=max(0.0, delay)))
            return -1.0

        def set_interval(interp_, this, args):
            fn = timer_callable(args[0] if args else UNDEFINED)
            from repro.minijs.objects import to_int

            delay = float(to_int(args[1])) if len(args) > 1 else 0.0
            if fn is not None:
                return float(
                    realm.schedule(
                        fn, delay_ms=max(1.0, delay), interval=max(1.0, delay)
                    )
                )
            return -1.0

        def clear_timer(interp_, this, args):
            from repro.minijs.objects import to_int

            if args:
                timer_id = to_int(args[0], -1)
                for timer in realm.timers:
                    if timer.timer_id == timer_id:
                        timer.cancelled = True
            return UNDEFINED

        g = interp.global_object
        g.properties["setTimeout"] = interp.host_function(
            "setTimeout", set_timeout
        )
        g.properties["setInterval"] = interp.host_function(
            "setInterval", set_interval
        )
        g.properties["clearTimeout"] = interp.host_function(
            "clearTimeout", clear_timer
        )
        g.properties["clearInterval"] = interp.host_function(
            "clearInterval", clear_timer
        )

        console = interp.new_object("Console")
        self.console_log: List[str] = []

        def log(interp_, this, args):
            self.console_log.append(" ".join(to_string(a) for a in args))
            return UNDEFINED

        for name in ("log", "warn", "error", "info", "debug"):
            console.properties[name] = interp.host_function(name, log)
        g.properties["console"] = console

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def schedule(
        self, fn: JSFunction, delay_ms: float, interval: Optional[float] = None
    ) -> int:
        self._timer_seq += 1
        self.timers.append(
            Timer(
                fire_at=self.interp.clock_ms + delay_ms,
                fn=fn,
                interval=interval,
                timer_id=self._timer_seq,
            )
        )
        return self._timer_seq

    def flush_timers(self, max_tasks: int = 32) -> int:
        """Run due-and-future timers in order, up to ``max_tasks``.

        The virtual clock jumps to each timer's fire time, so a page's
        500 ms analytics beacon runs during the 30-second visit just as
        it would in a real browser.
        """
        executed = 0
        while executed < max_tasks:
            pending = [t for t in self.timers if not t.cancelled]
            if not pending:
                break
            timer = min(pending, key=lambda t: t.fire_at)
            self.timers.remove(timer)
            if timer.interval is not None and not timer.cancelled:
                # Re-arm intervals, bounded by max_tasks overall.
                self.timers.append(
                    Timer(
                        fire_at=timer.fire_at + timer.interval,
                        fn=timer.fn,
                        interval=timer.interval,
                        timer_id=timer.timer_id,
                    )
                )
            meter = self.interp.meter
            if meter is not None and timer.fire_at > self.interp.clock_ms:
                # The clock jump below fast-forwards virtual time; the
                # deadline budget must see it (a page napping through
                # `setTimeout(fn, 3600000)` spends an hour of its
                # deadline in one flush) — and check before running the
                # callback.
                meter.advance_clock_ms(
                    timer.fire_at - self.interp.clock_ms
                )
                meter.check_deadline()
            self.interp.clock_ms = max(self.interp.clock_ms, timer.fire_at)
            try:
                self.interp.call_function(timer.fn, self.interp.global_object,
                                          [])
            except BudgetExceeded:
                # Site-isolation budgets must abort the visit; only the
                # page's own errors are survivable.
                raise
            except MiniJSError as error:
                # The page's own errors (thrown values, TypeErrors, a
                # callback blowing the per-script step limit) must not
                # crash the visit — but they are recorded, never
                # silently swallowed.  Anything else (a Python bug in
                # host bindings) propagates: the survey's per-site
                # containment turns it into a structured site failure
                # instead of a miscounted "clean" visit.
                self.timer_errors.append(str(error))
            executed += 1
        return executed

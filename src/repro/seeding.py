"""Stable seed derivation.

``hash()`` on strings is randomized per process (PYTHONHASHSEED), so
``random.Random(("a", 1))`` is NOT reproducible across runs.  Every
component of the pipeline derives child seeds through this module
instead, keeping the whole crawl bit-for-bit deterministic.
"""

from __future__ import annotations

import hashlib
from typing import Union

Part = Union[int, str, bytes, float]


def derive_seed(*parts: Part) -> int:
    """A 63-bit seed deterministically derived from the parts."""
    hasher = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            hasher.update(b"b" + part)
        elif isinstance(part, str):
            hasher.update(b"s" + part.encode("utf-8"))
        elif isinstance(part, bool):
            hasher.update(b"o1" if part else b"o0")
        elif isinstance(part, int):
            hasher.update(b"i" + str(part).encode("ascii"))
        elif isinstance(part, float):
            hasher.update(b"f" + repr(part).encode("ascii"))
        else:
            raise TypeError("unsupported seed part %r" % (part,))
        hasher.update(b"\x00")
    return int.from_bytes(hasher.digest()[:8], "big") >> 1

"""Convenience entry points tying the whole pipeline together."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.blocking.extension import BrowsingCondition
from repro.core import reporting
from repro.core.survey import (
    ProgressCallback,
    SurveyConfig,
    SurveyResult,
    run_survey,
)
from repro.webgen.sitegen import SyntheticWeb, build_web
from repro.webidl.registry import FeatureRegistry, default_registry


def build_default_web(
    n_sites: int = 10_000, seed: int = 2016
) -> Tuple[FeatureRegistry, SyntheticWeb]:
    """The standard registry + a synthetic web over it."""
    registry = default_registry()
    return registry, build_web(registry, n_sites=n_sites, seed=seed)


def run_small_survey(
    n_sites: int = 200,
    seed: int = 2016,
    conditions: Sequence[str] = (
        BrowsingCondition.DEFAULT,
        BrowsingCondition.BLOCKING,
    ),
    visits_per_site: int = 5,
    progress: Optional[ProgressCallback] = None,
) -> SurveyResult:
    """Build a scaled-down web and run the full survey over it.

    All analyses are resolution-independent (fractions and rates), so a
    few hundred sites reproduce the paper's shapes; raise ``n_sites``
    toward 10,000 for the full-scale run.
    """
    registry, web = build_default_web(n_sites=n_sites, seed=seed)
    config = SurveyConfig(
        conditions=tuple(conditions),
        visits_per_site=visits_per_site,
        seed=seed,
    )
    return run_survey(web, registry, config, progress=progress)


def summarize(result: SurveyResult) -> str:
    """A human-readable digest of a survey's headline findings."""
    parts = [
        "== Crawl summary (Table 1) ==",
        reporting.table1_text(result),
        "",
        "== Headline feature statistics (section 5.3) ==",
        reporting.headline_text(result),
    ]
    return "\n".join(parts)

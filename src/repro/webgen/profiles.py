"""Per-standard usage profiles and per-site plan sampling.

This is the calibration heart of the synthetic web.  For every standard
the catalog records the paper's published observations (sites using it,
block rate, per-extension block rates); this module turns those into a
*generative* model and samples a :class:`SitePlan` for each ranked site:

* whether the site uses each standard (Bernoulli with a per-site
  richness factor producing Figure 8's wide complexity spread and
  zero-JS mode, solved per standard so the marginal still hits the
  catalog target);
* through which script **context** — first-party / ad-only /
  tracker-only / ad+tracker — sampled from the catalog's block-rate
  decomposition, which is what makes block rates *emerge* from actual
  resource blocking;
* which **features** of the standard (the most popular feature always,
  the rest Zipf-decaying — reproducing "79% of features used on <1% of
  sites");
* with which **trigger** — page load, easy interaction (body-level
  handler), hard interaction (a specific element), or a deep page —
  whose stochastic elicitation produces the internal-validation decay
  of Table 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.standards.catalog import StandardSpec, context_mixture
from repro.webidl.registry import FeatureRegistry

# Trigger classes.
TRIGGER_LOAD = "load"
TRIGGER_EASY = "interaction-easy"
TRIGGER_HARD = "interaction-hard"
TRIGGER_DEEP = "deep-page"

TRIGGERS = (TRIGGER_LOAD, TRIGGER_EASY, TRIGGER_HARD, TRIGGER_DEEP)

# Context classes (see repro.standards.catalog.context_mixture).
CONTEXT_FIRST = "first"
CONTEXT_AD = "ad"
CONTEXT_TRACKER = "tracker"
CONTEXT_BOTH = "ad+tracker"


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable knobs of the synthetic web."""

    #: Probability a planned usage is elicited only by interaction or
    #: deep navigation rather than on page load.  The split across the
    #: three flaky classes is below.
    trigger_mix: Tuple[float, float, float, float] = (0.72, 0.10, 0.11, 0.07)
    #: Zipf decay for within-standard feature sampling: feature at used
    #: rank k (k >= 1) is used with probability head / (k+1)**alpha.
    feature_head: float = 0.80
    feature_alpha: float = 1.15
    #: Fraction of sites that are essentially JavaScript-free (Figure
    #: 8's mode at zero).
    no_js_fraction: float = 0.035
    #: Fraction of sites that fail to measure (Table 1: 267 of 10,000),
    #: split evenly between unresponsive hosts and fatally broken JS.
    failure_fraction: float = 0.0267
    #: Richness spread (Figure 8): site factor s in [1-spread, 1+spread].
    richness_spread: float = 0.55
    #: Pages per site bounds.
    min_pages: int = 6
    max_pages: int = 28
    #: Elements per page bounds (monkey-testing target density).
    min_elements: int = 18
    max_elements: int = 48


@dataclass(frozen=True)
class StandardUsage:
    """One (site, standard) usage: the unit the crawl measures."""

    standard: str
    context: str
    features: Tuple[str, ...]
    trigger: str


@dataclass
class SitePlan:
    """Everything the generator decided about one site."""

    domain: str
    rank: int
    richness: float
    no_js: bool
    failure_mode: Optional[str]  # None | "unresponsive" | "syntax-error"
    usages: List[StandardUsage] = field(default_factory=list)
    #: Standards only a human-style session elicits (login walls, hover
    #: menus, media players the monkey cannot reach) — the source of the
    #: Figure 9 external-validation outliers.
    manual_only: List[str] = field(default_factory=list)
    #: Functionality behind a login wall (the paper's "closed web",
    #: section 7.3): realized as a gated account page whose script only
    #: runs with a valid session token in localStorage.
    gated: List[StandardUsage] = field(default_factory=list)
    #: The credential that unlocks the gated content (None = open site).
    credentials: Optional[str] = None

    def standards_used(self) -> List[str]:
        return sorted({u.standard for u in self.usages})

    def usages_in_context(self, context: str) -> List[StandardUsage]:
        return [u for u in self.usages if u.context == context]


class UsageProfiles:
    """Solved per-standard sampling parameters for a ranking of N sites."""

    def __init__(
        self,
        registry: FeatureRegistry,
        n_sites: int,
        config: Optional[GeneratorConfig] = None,
        seed: int = 77,
    ) -> None:
        self.registry = registry
        self.n_sites = n_sites
        self.config = config or GeneratorConfig()
        self._seed = seed
        self._richness = self._assign_richness()
        self._no_js = self._assign_no_js()
        self._exponents = self._assign_exponents()
        self._base_probability: Dict[str, float] = {}
        self._probabilities: Dict[str, "np.ndarray"] = {}
        self._mixtures: Dict[str, Dict[str, float]] = {}
        for spec in registry.standards():
            if spec.never_used:
                continue
            base = self._solve_base_probability(spec)
            self._base_probability[spec.abbrev] = base
            self._probabilities[spec.abbrev] = self._probability_array(
                spec, base
            )
            self._mixtures[spec.abbrev] = context_mixture(spec)

    # -- per-site factors ----------------------------------------------------

    def _assign_richness(self) -> List[float]:
        """Deterministic per-rank richness factors with mean 1."""
        rng = random.Random(self._seed)
        spread = self.config.richness_spread
        factors = [
            1.0 + spread * (2.0 * rng.random() - 1.0)
            for _ in range(self.n_sites)
        ]
        mean = sum(factors) / len(factors)
        return [f / mean for f in factors]

    def _assign_no_js(self) -> List[bool]:
        rng = random.Random(self._seed + 1)
        return [
            rng.random() < self.config.no_js_fraction
            for _ in range(self.n_sites)
        ]

    def richness(self, rank: int) -> float:
        return self._richness[rank - 1]

    def is_no_js(self, rank: int) -> bool:
        return self._no_js[rank - 1]

    # -- probability solving ---------------------------------------------------

    def _assign_exponents(self) -> Dict[int, "np.ndarray"]:
        """Per-rank sampling exponents for each rank_bias class.

        The exponent combines the site's richness factor with Figure 5's
        rank skew; ``1-(1-p)^exponent`` keeps small probabilities
        proportional to the exponent while saturating gracefully for
        popular standards.
        """
        n = self.n_sites
        richness = np.asarray(self._richness)
        position = np.linspace(0.0, 1.0, n) if n > 1 else np.zeros(1)
        multipliers = {
            0: np.ones(n),
            1: 1.9 - 1.8 * position,
            -1: 0.1 + 1.8 * position,
        }
        return {
            bias: np.maximum(0.05, richness * mult)
            for bias, mult in multipliers.items()
        }

    def _probability_array(
        self, spec: StandardSpec, base: float
    ) -> "np.ndarray":
        """P(site uses the standard), indexed by rank-1."""
        exponents = self._exponents[spec.rank_bias]
        base = min(max(base, 0.0), 1.0 - 1e-12)
        probabilities = 1.0 - (1.0 - base) ** exponents
        no_js = np.asarray(self._no_js, dtype=bool)
        probabilities[no_js] = 0.0
        return probabilities

    def _expected_sites(self, spec: StandardSpec, base: float) -> float:
        return float(self._probability_array(spec, base).sum())

    def _solve_base_probability(self, spec: StandardSpec) -> float:
        """Binary-search the base probability hitting the catalog target."""
        target = spec.popularity * self.n_sites
        low, high = 0.0, 1.0
        for _ in range(48):
            mid = (low + high) / 2.0
            if self._expected_sites(spec, mid) < target:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0

    def _site_probability(
        self, spec: StandardSpec, base: float, rank: int
    ) -> float:
        """P(site at ``rank`` uses the standard) (solved probabilities)."""
        cached = self._probabilities.get(spec.abbrev)
        if cached is not None:
            return float(cached[rank - 1])
        array = self._probability_array(spec, base)
        return float(array[rank - 1])

    # -- plan sampling -----------------------------------------------------------

    def sample_plan(
        self, domain: str, rank: int, rng: random.Random
    ) -> SitePlan:
        """Sample the full usage plan for one site."""
        config = self.config
        failure_mode: Optional[str] = None
        if rng.random() < config.failure_fraction:
            failure_mode = (
                "unresponsive" if rng.random() < 0.5 else "syntax-error"
            )
        plan = SitePlan(
            domain=domain,
            rank=rank,
            richness=self.richness(rank),
            no_js=self.is_no_js(rank),
            failure_mode=failure_mode,
        )
        if plan.no_js:
            return plan
        for spec in self.registry.standards():
            if spec.never_used:
                continue
            base = self._base_probability[spec.abbrev]
            if rng.random() >= self._site_probability(spec, base, rank):
                continue
            context = self._sample_context(spec, rng)
            features = self._sample_features(spec, rng)
            trigger = self._sample_trigger(rng)
            plan.usages.append(
                StandardUsage(
                    standard=spec.abbrev,
                    context=context,
                    features=features,
                    trigger=trigger,
                )
            )
        self._sample_manual_only(plan, rng)
        self._sample_gated(plan, rng)
        return plan

    def _sample_gated(self, plan: SitePlan, rng: random.Random) -> None:
        """Plant login-gated functionality on a slice of the web.

        Only sites that already use DOM Level 1 and Web Storage host a
        login flow (the gate itself needs getElementById and
        localStorage, and must not perturb the open-web calibration).
        The gated standards are drawn from ones the open pages do not
        use, so authenticated crawling has something real to find.
        """
        if plan.failure_mode is not None or plan.no_js:
            return
        used = set(plan.standards_used())
        if "DOM1" not in used or "H-WS" not in used:
            return
        if rng.random() >= 0.08:
            return
        candidates = [
            s for s in self.registry.standards()
            if not s.never_used and s.abbrev not in used
        ]
        rng.shuffle(candidates)
        count = rng.randint(1, 3)
        for spec in candidates[:count]:
            plan.gated.append(
                StandardUsage(
                    standard=spec.abbrev,
                    context=CONTEXT_FIRST,
                    features=self._sample_features(spec, rng),
                    trigger=TRIGGER_LOAD,
                )
            )
        if plan.gated:
            plan.credentials = "user-%d" % plan.rank

    def _sample_manual_only(self, plan: SitePlan, rng: random.Random) -> None:
        """Plant human-only functionality on a small set of sites.

        Section 6.2: manual interaction found standards the monkey
        missed on 15 of 92 traffic-weighted sites — mostly one or two,
        with rare large outliers (one site at 17).  Top-ranked sites are
        likelier to carry such depth (login-gated apps, media players).
        """
        if plan.failure_mode is not None or plan.no_js:
            return
        position = (plan.rank - 1) / max(1, self.n_sites - 1)
        probability = 0.11 * (1.6 - 1.2 * position)
        if rng.random() >= probability:
            return
        used = set(plan.standards_used())
        candidates = [
            s.abbrev
            for s in self.registry.standards()
            if not s.never_used and s.abbrev not in used
        ]
        if not candidates:
            return
        roll = rng.random()
        if roll < 0.70:
            count = 1
        elif roll < 0.90:
            count = 2
        elif roll < 0.97:
            count = rng.randint(4, 7)
        else:
            count = rng.randint(12, min(17, len(candidates)))
        rng.shuffle(candidates)
        plan.manual_only = sorted(candidates[:count])

    def _sample_context(
        self, spec: StandardSpec, rng: random.Random
    ) -> str:
        mixture = self._mixtures[spec.abbrev]
        roll = rng.random()
        cumulative = 0.0
        for context in (CONTEXT_AD, CONTEXT_TRACKER, CONTEXT_BOTH):
            cumulative += mixture[context]
            if roll < cumulative:
                return context
        return CONTEXT_FIRST

    def _sample_features(
        self, spec: StandardSpec, rng: random.Random
    ) -> Tuple[str, ...]:
        used_pool = self.registry.used_features_of_standard(spec.abbrev)
        if not used_pool:
            return ()
        chosen = [used_pool[0].name]  # the top feature, always
        head = self.config.feature_head
        alpha = self.config.feature_alpha
        for k, feature in enumerate(used_pool[1:], start=1):
            if rng.random() < head / ((k + 1) ** alpha):
                chosen.append(feature.name)
        return tuple(chosen)

    def _sample_trigger(self, rng: random.Random) -> str:
        roll = rng.random()
        cumulative = 0.0
        for trigger, weight in zip(TRIGGERS, self.config.trigger_mix):
            cumulative += weight
            if roll < cumulative:
                return trigger
        return TRIGGER_LOAD

    # -- introspection (used by calibration tests) --------------------------------

    def expected_sites_for(self, abbrev: str) -> float:
        spec = self.registry.standard(abbrev)
        if spec.never_used:
            return 0.0
        return self._expected_sites(spec, self._base_probability[abbrev])

"""A small hostile web: one site per crawl pathology.

The synthetic web models the *measurable* internet; this module models
the 267 sites the paper could not measure — pages that spin, allocate,
recurse, flood the DOM, storm the network, nap through the visit, hang
the connection or crash the browser.  Each pathology gets its own
domain so the chaos acceptance run can assert that every budget class
fires on its designated site and nowhere else:

=================  ============================================
domain             what it does / which budget catches it
=================  ============================================
``steps.chaos``    ``while (true)`` — whole-round step budget
``alloc.chaos``    allocation bomb — MiniJS allocation budget
``strings.chaos``  doubling concat — string-byte budget
``recurse.chaos``  unbounded recursion — call-depth budget
``dom.chaos``      createElement flood — DOM-node budget
``fetch.chaos``    request storm — per-page fetch budget
``deadline.chaos`` hour-long ``setTimeout`` nap — deadline
                   (fires under an injected virtual clock)
``hang.chaos``     connection that never answers — watchdog
``crash.chaos``    takes the worker process down — watchdog
``flaky.chaos``    resets the first attempt of every request —
                   per-request retry must absorb it (measured,
                   ``requests_retried > 0``, no degraded causes)
``trunc.chaos``    body cut mid-script — recovering HTML parse
                   salvages the page (measured + degraded)
``garbage.chaos``  corrupted bytes — control chars stripped,
                   page salvaged (measured + degraded)
``slow.chaos``     45-second synthetic latency — the deadline
                   budget fires (unmeasured, cause ``deadline``)
``ok-N.chaos``     benign controls; must measure cleanly
=================  ============================================

The hostile *content* is bounded even unmetered (loops stop, strings
top out around a megabyte) so an unbudgeted test touching one of these
sites degrades into an ordinary script-step-limit failure rather than
eating the machine.  The hang/crash pathologies are network faults,
not content — :class:`HostileWeb` serves those domains benignly and
:func:`hostile_web` wraps the whole thing in a
:class:`~repro.net.chaos.ChaosSource` to arm them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.sandbox import ResourceBudget, VirtualClock
from repro.net.chaos import ChaosSource
from repro.net.resources import Request, ResourceKind, Response
from repro.webgen.alexa import RankedSite
from repro.webgen.thirdparty import ThirdPartyEcosystem

#: every budget-class pathology, in crawl (rank) order
BUDGET_PATHOLOGIES = (
    "steps", "alloc", "strings", "recurse", "dom", "fetch", "deadline",
)

#: pathologies the watchdog (not a budget) must handle
POISON_PATHOLOGIES = ("hang", "crash")

#: network-fault pathologies the resilience layer must handle
#: (served benignly by HostileWeb; armed by the ChaosSource wrapper)
NET_PATHOLOGIES = ("flaky", "trunc", "garbage", "slow")

#: pathology -> the budget cause its partial measurement must carry
#: (strings share the allocation budget: both are memory exhaustion)
EXPECTED_CAUSES = {
    "steps": "steps",
    "alloc": "allocation",
    "strings": "allocation",
    "recurse": "recursion",
    "dom": "dom-nodes",
    "fetch": "fetches",
    "deadline": "deadline",
}

_PATHOLOGY_SCRIPTS: Dict[str, str] = {
    # Burns interpreter steps forever; the per-script step limit would
    # eventually catch it, but the (lower) whole-round budget fires
    # first.
    "steps": "var i = 0; while (true) { i = i + 1; }",
    # Allocation-heavy, step-light: each pass allocates a 16-slot array
    # plus an object, so the allocation budget fires long before the
    # step budget would.
    "alloc": (
        "var hoard = []; var i = 0;"
        "while (i < 30000) {"
        "  hoard.push([0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]);"
        "  i = i + 1;"
        "}"
    ),
    # Doubling concatenation: exponential string growth with trivial
    # step cost.  Bounded at ~1 MB final size so an unmetered run
    # cannot eat the machine.
    "strings": (
        'var s = "xxxxxxxx"; var i = 0;'
        "while (i < 17) { s = s + s; i = i + 1; }"
    ),
    # The recursion budget sits below the engine's own (catchable)
    # depth cap, so it fires first and aborts the visit.
    "recurse": "function f() { f(); } f();",
    # DOM flood: node growth outpaces every other counter.
    "dom": (
        "var i = 0;"
        "while (i < 30000) {"
        '  document.body.appendChild(document.createElement("div"));'
        "  i = i + 1;"
        "}"
    ),
    # Request storm from one page; the per-page fetch cap fires.
    "fetch": (
        "var i = 0;"
        'while (i < 3000) { fetch("/x" + i); i = i + 1; }'
    ),
    # Naps through the visit.  Timer flushing fast-forwards the
    # virtual clock by the full hour, so the deadline budget fires
    # without a single wall-clock second passing.
    "deadline": (
        "setTimeout(function () { var napped = 1; }, 3600000);"
    ),
}

#: what a harmless control site runs (touches one instrumented API)
_BENIGN_SCRIPT = (
    'var el = document.createElement("p");'
    "document.body.appendChild(el);"
    'setTimeout(function () { el.setAttribute("data-late", "1"); }, 40);'
)

#: ~2.5 KB of inert padding.  The truncate/garbage pages serve it as a
#: *second* script after the benign one, so a 50% body cut (or a
#: second-half garble) lands squarely in this script while the benign
#: one before it survives — the page degrades but stays measurable.
_FILLER_SCRIPT = " ".join(
    "var pad%d = %d;" % (i, i) for i in range(160)
)


@dataclass(frozen=True)
class _HostilePlan:
    """The slice of a SitePlan the survey runner reads."""

    manual_only: Tuple[str, ...] = ()
    failure_mode: Optional[str] = None


@dataclass
class HostileSite:
    """One pathological (or control) site."""

    domain: str
    rank: int
    pathology: Optional[str]  # None for benign controls
    plan: _HostilePlan = field(default_factory=_HostilePlan)

    @property
    def script(self) -> str:
        if self.pathology in _PATHOLOGY_SCRIPTS:
            return _PATHOLOGY_SCRIPTS[self.pathology]
        return _BENIGN_SCRIPT


class HostileRanking:
    """A fixed ranking over the hostile domains (Alexa stand-in)."""

    def __init__(self, domains: Sequence[str]) -> None:
        self._sites = [
            RankedSite(rank, domain, 1000.0 / rank)
            for rank, domain in enumerate(domains, start=1)
        ]

    def all(self) -> List[RankedSite]:
        return list(self._sites)

    def visit_weight(self, domain: str) -> float:
        total = sum(s.monthly_visits for s in self._sites)
        for site in self._sites:
            if site.domain == domain:
                return site.monthly_visits / total
        raise KeyError(domain)

    def __len__(self) -> int:
        return len(self._sites)


class HostileWeb:
    """A WebSource serving the pathology sites.

    Interleaves benign controls among the hostile sites so the
    acceptance run can also assert the crawl still *measures* ordinary
    sites while its neighbors explode.  The hang/crash domains are
    listed (and ranked) here but served benignly; arm them by wrapping
    in a :class:`~repro.net.chaos.ChaosSource` (see
    :func:`hostile_web`).
    """

    def __init__(
        self,
        include_poison: bool = True,
        include_net: bool = False,
    ) -> None:
        self.ecosystem = ThirdPartyEcosystem()
        pathologies = list(BUDGET_PATHOLOGIES)
        if include_poison:
            pathologies += list(POISON_PATHOLOGIES)
        self.sites: Dict[str, HostileSite] = {}
        domains: List[str] = []
        benign = 0
        for index, pathology in enumerate(pathologies):
            if index % 3 == 0:
                benign += 1
                domains.append("ok-%d.chaos" % benign)
            domains.append("%s.chaos" % pathology)
        benign += 1
        domains.append("ok-%d.chaos" % benign)
        if include_net:
            # Appended after the existing sequence so arming the net
            # pathologies never renumbers the budget/poison ranks.
            for pathology in NET_PATHOLOGIES:
                domains.append("%s.chaos" % pathology)
            benign += 1
            domains.append("ok-%d.chaos" % benign)
        for rank, domain in enumerate(domains, start=1):
            pathology = domain.split(".", 1)[0]
            if pathology.startswith("ok-"):
                pathology = None
            self.sites[domain] = HostileSite(
                domain=domain, rank=rank, pathology=pathology
            )
        self.ranking = HostileRanking(domains)

    @property
    def hang_domains(self) -> Tuple[str, ...]:
        return tuple(
            d for d, s in self.sites.items() if s.pathology == "hang"
        )

    @property
    def crash_domains(self) -> Tuple[str, ...]:
        return tuple(
            d for d, s in self.sites.items() if s.pathology == "crash"
        )

    @property
    def flaky_domains(self) -> Tuple[str, ...]:
        return tuple(
            d for d, s in self.sites.items() if s.pathology == "flaky"
        )

    @property
    def truncate_domains(self) -> Tuple[str, ...]:
        return tuple(
            d for d, s in self.sites.items() if s.pathology == "trunc"
        )

    @property
    def garbage_domains(self) -> Tuple[str, ...]:
        return tuple(
            d for d, s in self.sites.items() if s.pathology == "garbage"
        )

    @property
    def slow_domains(self) -> Tuple[str, ...]:
        return tuple(
            d for d, s in self.sites.items() if s.pathology == "slow"
        )

    # -- WebSource ------------------------------------------------------

    def respond(self, request: Request) -> Optional[Response]:
        site = self.sites.get(request.url.host)
        if site is None:
            return None
        path = request.url.path
        if path == "/":
            return Response(
                url=request.url,
                content_type="text/html",
                body=self._page_html(site),
            )
        # Everything else (the fetch storm's /x0, /x1, ... targets)
        # answers with an empty success so the storm keeps storming.
        return Response(url=request.url, content_type="text/plain",
                        body="")

    def script_bodies(
        self, domains: Optional[Sequence[str]] = None
    ) -> Iterator[str]:
        """The inline bodies, for compile-cache pre-warming."""
        if domains is None:
            domains = list(self.sites)
        for domain in domains:
            site = self.sites.get(domain)
            if site is not None:
                yield site.script

    def _page_html(self, site: HostileSite) -> str:
        if site.pathology in ("trunc", "garbage"):
            # Benign script first, padding second: the body damage the
            # chaos wrapper inflicts lands in the padding's tail.
            return (
                "<html><head><title>%s</title></head>"
                "<body><p>pathology: %s</p><script>%s</script>"
                "<script>%s</script></body></html>"
                % (site.domain, site.pathology, _BENIGN_SCRIPT,
                   _FILLER_SCRIPT)
            )
        return (
            "<html><head><title>%s</title></head>"
            "<body><p>pathology: %s</p><script>%s</script></body></html>"
            % (site.domain, site.pathology or "none", site.script)
        )


def hostile_web(include_poison: bool = True, include_net: bool = False):
    """The armed hostile web: content pathologies + network faults."""
    web = HostileWeb(
        include_poison=include_poison, include_net=include_net
    )
    if not include_poison and not include_net:
        return web
    return ChaosSource(
        web,
        hang_domains=web.hang_domains,
        crash_domains=web.crash_domains,
        flaky_domains=web.flaky_domains,
        truncate_domains=web.truncate_domains,
        garbage_domains=web.garbage_domains,
        slow_domains=web.slow_domains,
    )


def chaos_budget() -> ResourceBudget:
    """The reference budget for chaos runs: every limit armed.

    Tuned so each hostile site trips *its own* budget class first
    while the benign controls finish with comfortable headroom, and
    driven by a :class:`VirtualClock` so budget-limited chaos runs are
    bit-identical across machines and start methods.
    """
    return ResourceBudget(
        deadline_seconds=30.0,
        max_steps=120_000,
        max_allocations=8_000,
        max_string_bytes=200_000,
        max_call_depth=64,
        max_dom_nodes=1_500,
        max_fetches_per_page=64,
        clock=VirtualClock(
            seconds_per_step=0.0001, seconds_per_fetch=0.05
        ),
    )

"""Site generation and the SyntheticWeb web source.

Each ranked domain becomes a :class:`Site`: a page tree (home, section
and article pages), a first-party script, third-party ad/tracker tags,
and HTML that wires interaction handlers to elements.  The
:class:`SyntheticWeb` serves all of it through the
:class:`repro.net.fetcher.WebSource` protocol, so the browser, proxy
and blockers see an ordinary web.

Placement rules (how a plan becomes bytes on the wire):

* ``first``-context usage -> the site's own ``/static/app.js`` (load
  triggers at top level, interaction triggers as handler functions),
  or an inline ``<script>`` on one page for deep-page usage;
* ``ad``-context -> the site's ad network tag
  (``https://<network>/tag.js?site=R&pg=K``);
* ``tracker``-context -> the tracker tag
  (``https://<tracker>/collect.js?sid=R&pg=K``);
* ``ad+tracker`` -> the same usage emitted into *both* tags, so it
  survives either extension alone but not the pair — the mechanism
  behind the paper's combined-vs-single block rates (Figure 7);
* interaction handlers get ``onclick="__hN()"`` elements on every page
  (a content-wrapping container for "easy" handlers, a small discrete
  element for "hard" ones).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.net.resources import Request, Response
from repro.seeding import derive_seed
from repro.webgen.alexa import AlexaRanking
from repro.webgen.profiles import (
    CONTEXT_AD,
    CONTEXT_BOTH,
    CONTEXT_FIRST,
    CONTEXT_TRACKER,
    GeneratorConfig,
    SitePlan,
    StandardUsage,
    TRIGGER_DEEP,
    TRIGGER_EASY,
    TRIGGER_HARD,
    TRIGGER_LOAD,
    UsageProfiles,
)
from repro.webgen.scripts import ScriptSynthesizer
from repro.webgen.thirdparty import ThirdParty, ThirdPartyEcosystem
from repro.webidl.registry import FeatureRegistry

_SECTION_WORDS = ["news", "products", "blog", "reviews", "guides", "videos",
                  "deals", "community", "events", "support"]

_PARAGRAPHS = [
    "Fresh updates every morning from our editorial desk.",
    "Explore our hand-picked selection for this season.",
    "Independent analysis you will not find anywhere else.",
    "Thousands of readers join the discussion every day.",
    "A closer look at what everyone is talking about.",
    "Practical tips from people who actually use it.",
]


@dataclass
class PlacedHandler:
    """One interaction handler: id, the usage, easy/hard class."""

    handler_id: int
    usage: StandardUsage
    easy: bool


@dataclass
class Site:
    """One generated site: pages, scripts, handler wiring."""

    domain: str
    rank: int
    plan: SitePlan
    seed: int
    pages: List[str] = field(default_factory=list)
    ad_network: Optional[ThirdParty] = None
    tracker: Optional[ThirdParty] = None
    include_cdn: bool = False
    #: context -> load usages placed in that context's site-wide script
    load_usages: Dict[str, List[StandardUsage]] = field(default_factory=dict)
    #: context -> interaction handlers in that context's script
    handlers: Dict[str, List[PlacedHandler]] = field(default_factory=dict)
    #: page index -> context -> deep usages realized on that page
    deep_usages: Dict[int, Dict[str, List[StandardUsage]]] = field(
        default_factory=dict
    )
    #: login/account paths when the site has gated content (section 7.3)
    login_path: Optional[str] = None
    account_path: Optional[str] = None

    @property
    def session_token(self) -> str:
        """The localStorage value a successful login stores."""
        return "tok-%d" % self.rank

    @property
    def failed(self) -> bool:
        return self.plan.failure_mode is not None

    def page_index(self, path: str) -> Optional[int]:
        try:
            return self.pages.index(path)
        except ValueError:
            return None

    def all_handlers(self) -> List[PlacedHandler]:
        out: List[PlacedHandler] = []
        for handlers in self.handlers.values():
            out.extend(handlers)
        return out


def _contexts_of(usage: StandardUsage) -> List[str]:
    """The script context(s) a usage is emitted into."""
    if usage.context == CONTEXT_BOTH:
        return [CONTEXT_AD, CONTEXT_TRACKER]
    return [usage.context]


def build_site(
    domain: str,
    rank: int,
    plan: SitePlan,
    ecosystem: ThirdPartyEcosystem,
    config: GeneratorConfig,
    seed: int,
) -> Site:
    """Materialize a sampled plan into a site layout."""
    rng = random.Random(seed)
    site = Site(domain=domain, rank=rank, plan=plan, seed=seed)

    # Page tree: home + sections + articles.
    n_pages = rng.randint(config.min_pages, config.max_pages)
    sections = rng.sample(_SECTION_WORDS, k=min(len(_SECTION_WORDS),
                                                max(2, n_pages // 5)))
    pages = ["/"]
    for section in sections:
        pages.append("/%s/" % section)
    article = 1
    while len(pages) < n_pages:
        section = sections[(article - 1) % len(sections)]
        pages.append("/%s/a%d/" % (section, article))
        article += 1
    site.pages = pages[:n_pages]

    # Gated sites carry a login flow and an account area; the account
    # page is public but its functionality only runs with a session.
    if plan.gated:
        site.login_path = "/login/"
        site.account_path = "/account/"
        site.pages.extend([site.login_path, site.account_path])

    # Third parties: planned ad/tracker usage forces a tag; otherwise
    # most sites still carry one (ads are everywhere).
    wants_ads = any(
        CONTEXT_AD in _contexts_of(u) for u in plan.usages
    )
    wants_tracker = any(
        CONTEXT_TRACKER in _contexts_of(u) for u in plan.usages
    )
    if wants_ads or rng.random() < 0.70:
        site.ad_network = ecosystem.pick_ad_network(rng)
    if wants_tracker or rng.random() < 0.60:
        # trackers[0] also sits on the ad filter list (EasyPrivacy-style
        # overlap); planned tracker usage routes around it so the
        # calibrated single-extension block rates stay exact.
        pool = ecosystem.trackers[1:] if wants_tracker else ecosystem.trackers
        site.tracker = rng.choice(pool)
    site.include_cdn = rng.random() < 0.5

    # Place usages.
    handler_seq = 0
    for usage in plan.usages:
        contexts = _contexts_of(usage)
        if usage.trigger == TRIGGER_DEEP and len(site.pages) > 1:
            page_idx = rng.randrange(1, len(site.pages))
            for context in contexts:
                site.deep_usages.setdefault(page_idx, {}).setdefault(
                    context, []
                ).append(usage)
        elif usage.trigger in (TRIGGER_EASY, TRIGGER_HARD):
            easy = usage.trigger == TRIGGER_EASY
            for context in contexts:
                handler_seq += 1
                site.handlers.setdefault(context, []).append(
                    PlacedHandler(
                        handler_id=handler_seq, usage=usage, easy=easy
                    )
                )
        else:  # load (or deep on a single-page site)
            for context in contexts:
                site.load_usages.setdefault(context, []).append(usage)
    return site


class SyntheticWeb:
    """The full synthetic web: a WebSource over all generated sites."""

    def __init__(
        self,
        registry: FeatureRegistry,
        n_sites: int = 10_000,
        seed: int = 2016,
        config: Optional[GeneratorConfig] = None,
    ) -> None:
        self.registry = registry
        self.config = config or GeneratorConfig()
        self.seed = seed
        self.ranking = AlexaRanking(n_sites=n_sites, seed=seed)
        self.ecosystem = ThirdPartyEcosystem()
        self.profiles = UsageProfiles(
            registry, n_sites=n_sites, config=self.config, seed=seed + 1
        )
        self.synth = ScriptSynthesizer(registry)
        self.sites: Dict[str, Site] = {}
        for ranked in self.ranking.all():
            plan_rng = random.Random(derive_seed(seed, ranked.rank, "plan"))
            plan = self.profiles.sample_plan(
                ranked.domain, ranked.rank, plan_rng
            )
            self.sites[ranked.domain] = build_site(
                ranked.domain,
                ranked.rank,
                plan,
                self.ecosystem,
                self.config,
                seed=derive_seed(seed, ranked.rank, "site"),
            )
        self._domains_by_rank = [r.domain for r in self.ranking.all()]
        self._third_party_hosts = {
            tp.host: tp for tp in self.ecosystem.all_parties()
        }
        self._html_cache: "OrderedDict[Tuple[str, str], str]" = OrderedDict()
        self._script_cache: "OrderedDict[Tuple, str]" = OrderedDict()
        self._cache_limit = 8192
        self._cdn_script = self.synth.library_script(random.Random(seed + 9))

    # -- WebSource ------------------------------------------------------------

    def respond(self, request: Request) -> Optional[Response]:
        host = request.url.host
        site = self.sites.get(host)
        if site is not None:
            return self._respond_site(site, request)
        party = self._third_party_hosts.get(host)
        if party is not None:
            return self._respond_third_party(party, request)
        return None

    # -- site responses ----------------------------------------------------------

    def _respond_site(self, site: Site, request: Request) -> Optional[Response]:
        if site.plan.failure_mode == "unresponsive":
            return None
        path = request.url.path
        if path == "/static/app.js":
            return Response(
                url=request.url,
                content_type="application/javascript",
                body=self._first_party_script(site),
            )
        if path.startswith("/img/"):
            return Response(
                url=request.url, content_type="image/png", body=""
            )
        if path in site.pages or path == "/":
            return Response(
                url=request.url,
                content_type="text/html",
                body=self._page_html(site, path if path in site.pages else "/"),
            )
        return Response(url=request.url, status=404, body="not found")

    def _respond_third_party(
        self, party: ThirdParty, request: Request
    ) -> Optional[Response]:
        path = request.url.path
        if path == "/lib.js":
            return Response(
                url=request.url,
                content_type="application/javascript",
                body=self._cdn_script,
            )
        if path in ("/tag.js", "/collect.js"):
            params = _parse_query(request.url.query)
            rank = int(params.get("site", params.get("sid", "0")) or 0)
            page_idx = int(params.get("pg", "0") or 0)
            context = CONTEXT_AD if path == "/tag.js" else CONTEXT_TRACKER
            body = self._third_party_script(party, rank, page_idx, context)
            return Response(
                url=request.url,
                content_type="application/javascript",
                body=body,
            )
        if "/banner/" in path or "/px" in path:
            return Response(url=request.url, content_type="image/png",
                            body="")
        return Response(url=request.url, status=404, body="not found")

    # -- script assembly ------------------------------------------------------------

    def _first_party_script(self, site: Site) -> str:
        key = ("fp", site.domain)
        cached = self._cache_get(self._script_cache, key)
        if cached is not None:
            return cached
        if site.plan.failure_mode == "syntax-error":
            body = self.synth.broken_script()
        else:
            rng = random.Random(derive_seed(site.seed, "fp"))
            handlers = [
                (h.handler_id, h.usage)
                for h in site.handlers.get(CONTEXT_FIRST, [])
            ]
            body = self.synth.compose_script(
                site.load_usages.get(CONTEXT_FIRST, []),
                handlers,
                rng,
                banner="%s site bundle" % site.domain,
            )
        self._cache_put(self._script_cache, key, body)
        return body

    def _third_party_script(
        self, party: ThirdParty, rank: int, page_idx: int, context: str
    ) -> str:
        key = ("tp", party.host, rank, page_idx, context)
        cached = self._cache_get(self._script_cache, key)
        if cached is not None:
            return cached
        site = self._site_by_rank(rank)
        if site is None or site.plan.failure_mode is not None:
            body = "// %s tag\n" % party.name
        else:
            expected = site.ad_network if context == CONTEXT_AD else site.tracker
            if expected is None or expected.host != party.host:
                body = "// %s tag (unmatched)\n" % party.name
            else:
                rng = random.Random(derive_seed(site.seed, party.host, page_idx))
                loads = list(site.load_usages.get(context, []))
                deep = site.deep_usages.get(page_idx, {}).get(context, [])
                loads.extend(deep)
                handlers = [
                    (h.handler_id, h.usage)
                    for h in site.handlers.get(context, [])
                ]
                body = self.synth.compose_script(
                    loads, handlers, rng,
                    banner="%s tag for site %d" % (party.name, rank),
                )
        self._cache_put(self._script_cache, key, body)
        return body

    def _site_by_rank(self, rank: int) -> Optional[Site]:
        if 1 <= rank <= len(self._domains_by_rank):
            return self.sites.get(self._domains_by_rank[rank - 1])
        return None

    def script_bodies(
        self, domains: Optional[Sequence[str]] = None
    ) -> Iterator[str]:
        """The high-reuse script bodies of (a slice of) the web.

        Yields the shared CDN library and each site's first-party
        bundle — the bodies every page of every visit round executes.
        The survey runner feeds these to the compile cache before
        forking workers; per-page ad/tracker tags and inline scripts
        are generated (and cached) lazily at fetch time instead, since
        enumerating all of them up front would just move the whole
        generation cost to startup.
        """
        yield self._cdn_script
        if domains is None:
            domains = self._domains_by_rank
        for domain in domains:
            site = self.sites.get(domain)
            if site is None or site.plan.failure_mode == "unresponsive":
                continue
            yield self._first_party_script(site)

    # -- HTML assembly ------------------------------------------------------------

    def _page_html(self, site: Site, path: str) -> str:
        key = (site.domain, path)
        cached = self._cache_get(self._html_cache, key)
        if cached is not None:
            return cached
        html = self._render_page(site, path)
        self._cache_put(self._html_cache, key, html)
        return html

    def _render_page(self, site: Site, path: str) -> str:
        page_idx = site.page_index(path) or 0
        rng = random.Random(derive_seed(site.seed, "page", path))
        head_parts: List[str] = [
            "<title>%s - %s</title>" % (site.domain, path),
            '<meta charset="utf-8">',
            '<script src="/static/app.js"></script>',
        ]
        if site.plan.failure_mode != "syntax-error":
            if site.include_cdn:
                head_parts.append(
                    '<script src="https://cdnlib.net/lib.js"></script>'
                )
            if site.ad_network is not None:
                head_parts.append(
                    '<script src="%s&pg=%d"></script>'
                    % (site.ad_network.tag_url(site.rank), page_idx)
                )
            if site.tracker is not None:
                head_parts.append(
                    '<script src="%s&pg=%d"></script>'
                    % (site.tracker.tag_url(site.rank), page_idx)
                )

        body_parts: List[str] = []
        # Navigation links drive the crawler's breadth-first walk.
        nav_links = self._nav_links(site, path, rng)
        body_parts.append(
            "<ul id='nav'>%s</ul>"
            % "".join(
                '<li><a href="%s">%s</a></li>' % (href, label)
                for href, label in nav_links
            )
        )

        content = self._content_elements(site, page_idx, rng)
        # Easy handlers wrap the content in nested containers: a click
        # anywhere inside bubbles through all of them.
        easy = [h for h in site.all_handlers() if h.easy]
        opening = "".join(
            '<div class="zone" onclick="__h%d()">' % h.handler_id
            for h in easy
        )
        closing = "</div>" * len(easy)
        body_parts.append(
            '<div id="content">%s%s%s</div>' % (opening, content, closing)
        )

        # Hard handlers: one small discrete element each.
        for handler in site.all_handlers():
            if not handler.easy:
                body_parts.append(
                    '<span class="hotspot" id="act-%d" '
                    'onclick="__h%d()">more</span>'
                    % (handler.handler_id, handler.handler_id)
                )

        # Ad furniture for the blockers to chew on.
        if site.ad_network is not None and (
            site.plan.failure_mode != "syntax-error"
        ):
            body_parts.append(
                '<div class="ad-banner">'
                '<img src="https://%s/banner/b%d.png" alt="ad"></div>'
                % (site.ad_network.host, rng.randrange(1, 9))
            )
        body_parts.append(
            '<form action="/search"><input name="q" type="text">'
            '<button id="go">Search</button></form>'
        )

        # Deep first-party usage rides an inline script on its page.
        inline = ""
        deep_first = site.deep_usages.get(page_idx, {}).get(CONTEXT_FIRST, [])
        if deep_first and site.plan.failure_mode is None:
            script_rng = random.Random(derive_seed(site.seed, "deep", page_idx))
            inline = "<script>%s</script>" % self.synth.compose_script(
                deep_first, [], script_rng
            )

        # Gated-site special pages (section 7.3: the closed web).
        if path == site.login_path:
            body_parts.append(self._login_markup(site))
        elif path == site.account_path:
            inline += "<script>%s</script>" % self._gated_script(site)

        html = (
            "<!DOCTYPE html>\n<html>\n<head>%s</head>\n"
            "<body>%s%s</body>\n</html>\n"
            % ("\n".join(head_parts), "\n".join(body_parts), inline)
        )
        return html

    def _login_markup(self, site: Site) -> str:
        """The login form plus its validation script.

        Every API the gate touches (getElementById, getAttribute,
        localStorage.setItem) belongs to a standard the site's open
        pages already use, so the gate itself never perturbs the
        open-web measurements.
        """
        script = (
            "function __login() {\n"
            "  try {\n"
            "    var u = document.getElementById('login-user');\n"
            "    if (u && u.getAttribute('value') === %s) {\n"
            "      localStorage.setItem('session', %s);\n"
            "    }\n"
            "  } catch (e) {}\n"
            "}\n"
        ) % (
            _js_string(site.plan.credentials or ""),
            _js_string(site.session_token),
        )
        return (
            '<form id="login-form">'
            '<input type="text" id="login-user" name="user">'
            '<button id="login-btn" onclick="__login()">Sign in</button>'
            "</form><script>%s</script>" % script
        )

    def _gated_script(self, site: Site) -> str:
        """The account page's session-guarded functionality."""
        rng = random.Random(derive_seed(site.seed, "gated"))
        blocks = "\n".join(
            _indent(self.synth.usage_block(usage, rng))
            for usage in site.plan.gated
        )
        return (
            "try {\n"
            "  var tok = localStorage.getItem('session');\n"
            "  if (tok === %s) {\n"
            "%s\n"
            "  }\n"
            "} catch (e) {}\n"
        ) % (_js_string(site.session_token), blocks)

    def _nav_links(
        self, site: Site, path: str, rng: random.Random
    ) -> List[Tuple[str, str]]:
        links: List[Tuple[str, str]] = []
        # Home knows every section; sections know their articles; every
        # page links home and to a few random siblings.
        for candidate in site.pages:
            if candidate == path:
                continue
            is_child = candidate.startswith(path) and candidate != "/"
            if path == "/" and candidate.count("/") <= 2:
                links.append((candidate, candidate.strip("/") or "home"))
            elif is_child:
                links.append((candidate, candidate.strip("/")))
        others = [p for p in site.pages if p not in (path,)]
        rng.shuffle(others)
        for candidate in others[:3]:
            entry = (candidate, candidate.strip("/") or "home")
            if entry not in links:
                links.append(entry)
        if path != "/":
            links.append(("/", "home"))
        # One external link for realism (the crawler must ignore it).
        if rng.random() < 0.4:
            links.append(("https://cdnlib.net/about/", "partner"))
        return links

    def _content_elements(
        self, site: Site, page_idx: int, rng: random.Random
    ) -> str:
        n_elements = rng.randint(
            self.config.min_elements, self.config.max_elements
        )
        parts: List[str] = []
        for index in range(n_elements):
            roll = rng.random()
            if roll < 0.45:
                parts.append(
                    "<p>%s</p>" % rng.choice(_PARAGRAPHS)
                )
            elif roll < 0.70:
                parts.append(
                    '<div class="card" id="c%d-%d"><span>%s</span></div>'
                    % (page_idx, index, rng.choice(_PARAGRAPHS)[:24])
                )
            elif roll < 0.85:
                parts.append(
                    '<li class="item">entry %d</li>' % index
                )
            else:
                parts.append(
                    '<img src="/img/p%d.png" alt="photo %d">'
                    % (rng.randrange(1, 30), index)
                )
        return "".join(parts)

    # -- cache helpers ------------------------------------------------------------

    def _cache_get(self, cache: "OrderedDict", key) -> Optional[str]:
        value = cache.get(key)
        if value is not None:
            cache.move_to_end(key)
        return value

    def _cache_put(self, cache: "OrderedDict", key, value: str) -> None:
        cache[key] = value
        cache.move_to_end(key)
        while len(cache) > self._cache_limit:
            cache.popitem(last=False)

    # -- statistics ------------------------------------------------------------

    def measurable_sites(self) -> List[Site]:
        return [s for s in self.sites.values() if not s.failed]

    def failed_sites(self) -> List[Site]:
        return [s for s in self.sites.values() if s.failed]


def build_web(
    registry: FeatureRegistry,
    n_sites: int = 10_000,
    seed: int = 2016,
    config: Optional[GeneratorConfig] = None,
) -> SyntheticWeb:
    """Convenience constructor used by examples and benchmarks."""
    return SyntheticWeb(registry, n_sites=n_sites, seed=seed, config=config)


def _js_string(text: str) -> str:
    return "'%s'" % text.replace("\\", "\\\\").replace("'", "\\'")


def _indent(text: str, prefix: str = "    ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


def _parse_query(query: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for pair in query.split("&"):
        if "=" in pair:
            key, value = pair.split("=", 1)
            params[key] = value
    return params

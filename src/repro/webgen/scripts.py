"""MiniJS source synthesis for the synthetic web's scripts.

Every planned feature use must become real JavaScript the page executes
— only then does the measuring extension's prototype shim fire.  The
synthesizer knows, for each registry feature, how to obtain a receiver
(a singleton global, a constructed instance, or the interface object
for statics) and emits one call/assignment statement per use, grouped
per standard inside ``try``/``catch`` so one broken API cannot silence
the rest of the script (pages on the real web are equally defensive,
and equally broken).

Interaction-triggered usage is emitted as a global handler function
(``function __h12() { ... }``); the page HTML wires it to elements via
DOM0 ``onclick`` attributes — which is faithful to the paper's note
that DOM0 registrations are invisible to the instrumentation: the
wiring itself touches no instrumented feature.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.webgen.profiles import (
    StandardUsage,
    TRIGGER_EASY,
    TRIGGER_HARD,
    TRIGGER_LOAD,
)
from repro.webidl.corpus import SINGLETON_GLOBALS
from repro.webidl.registry import Feature, FeatureRegistry

_SAMPLE_STRINGS = ('"div"', '"main"', '"x"', '"data"', '"GET"', '"/api/v1"',
                   '"click"', '"en"', '"0"')
_SAMPLE_NUMBERS = ("0", "1", "10", "100", "0.5")


class ScriptSynthesizer:
    """Generates MiniJS source realizing planned feature usage."""

    def __init__(self, registry: FeatureRegistry) -> None:
        self._registry = registry

    # -- per-feature snippets -----------------------------------------------

    def receiver_expression(self, feature: Feature) -> str:
        """An expression evaluating to a suitable receiver."""
        singleton = SINGLETON_GLOBALS.get(feature.interface)
        if singleton is not None:
            return singleton
        return "new %s()" % feature.interface

    def _arguments(self, rng: random.Random, count: int) -> str:
        parts: List[str] = []
        for _ in range(count):
            if rng.random() < 0.6:
                parts.append(rng.choice(_SAMPLE_STRINGS))
            else:
                parts.append(rng.choice(_SAMPLE_NUMBERS))
        return ", ".join(parts)

    def feature_statement(self, feature: Feature, rng: random.Random) -> str:
        """One statement that uses the feature."""
        if feature.kind == "attribute":
            receiver = self.receiver_expression(feature)
            value = (
                rng.choice(_SAMPLE_STRINGS)
                if rng.random() < 0.7
                else rng.choice(_SAMPLE_NUMBERS)
            )
            return "%s.%s = %s;" % (receiver, feature.member, value)
        if feature.static:
            args = self._arguments(rng, rng.randrange(0, 3))
            return "%s.%s(%s);" % (feature.interface, feature.member, args)
        receiver = self.receiver_expression(feature)
        args = self._arguments(rng, rng.randrange(0, 3))
        if receiver.startswith("new "):
            return "(%s).%s(%s);" % (receiver, feature.member, args)
        return "%s.%s(%s);" % (receiver, feature.member, args)

    def usage_block(self, usage: StandardUsage, rng: random.Random) -> str:
        """All of one usage's feature statements, defensively wrapped."""
        statements: List[str] = []
        for name in usage.features:
            feature = self._registry.feature(name)
            statements.append("  " + self.feature_statement(feature, rng))
        body = "\n".join(statements)
        return "try {\n%s\n} catch (e) {}" % body

    # -- whole scripts -------------------------------------------------------

    def compose_script(
        self,
        load_usages: Sequence[StandardUsage],
        handler_usages: Sequence[Tuple[int, StandardUsage]],
        rng: random.Random,
        banner: str = "",
    ) -> str:
        """A complete script: load-time blocks plus handler functions.

        ``handler_usages`` pairs each interaction usage with its handler
        id; the page HTML (built elsewhere) carries matching
        ``onclick="__h<id>()"`` attributes.
        """
        parts: List[str] = []
        if banner:
            parts.append("// %s" % banner)
        for usage in load_usages:
            parts.append(self.usage_block(usage, rng))
        for handler_id, usage in handler_usages:
            parts.append(
                "function __h%d() {\n%s\n}"
                % (handler_id, _indent(self.usage_block(usage, rng)))
            )
        return "\n".join(parts) + ("\n" if parts else "")

    def library_script(self, rng: random.Random) -> str:
        """A benign CDN 'framework' script using no instrumented feature."""
        helpers = []
        for index in range(rng.randrange(2, 5)):
            helpers.append(
                "  fn%d: function (a, b) { return (a || 0) + (b || 0) + %d; }"
                % (index, index)
            )
        return (
            "var __lib = {\n%s\n};\n"
            "var __libVersion = \"%d.%d.%d\";\n"
            % (",\n".join(helpers), rng.randrange(1, 4),
               rng.randrange(0, 10), rng.randrange(0, 10))
        )

    def broken_script(self) -> str:
        """A script with a fatal syntax error (the 267-domain failure
        class: 'sites that contained syntax errors in their JavaScript
        code that prevented execution')."""
        return "function busted( { return ;;; <<garbage>>\n"


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())

"""The synthetic third-party ecosystem: ad networks, trackers, CDNs.

Blocking extensions work by recognizing third-party hosts and URL
patterns, so the synthetic web needs a realistic supporting cast:

* **ad networks** — serve per-site ad tags (``/tag.js?site=N``) and
  banner assets; targeted by the AdBlock Plus list.
* **trackers** — analytics and behavioral-tracking scripts; targeted by
  the Ghostery database (and some overlap with ad filters, as in
  reality).
* **CDNs** — benign static-asset hosts (frameworks, fonts) nobody
  blocks; they keep the blockers honest by giving them something they
  must NOT match.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

AD_CATEGORY = "advertising"
TRACKER_CATEGORY = "site-analytics"
CDN_CATEGORY = "cdn"


@dataclass(frozen=True)
class ThirdParty:
    """One third-party service."""

    name: str
    host: str
    category: str

    def tag_url(self, site_rank: int) -> str:
        """The per-site script URL sites embed."""
        if self.category == AD_CATEGORY:
            return "https://%s/tag.js?site=%d" % (self.host, site_rank)
        if self.category == TRACKER_CATEGORY:
            return "https://%s/collect.js?sid=%d" % (self.host, site_rank)
        return "https://%s/lib.js" % self.host


_AD_NETWORKS = [
    ("PixelAds", "static.pixelads.net"),
    ("BannerXchange", "cdn.bannerxchange.com"),
    ("ClickForward", "js.clickfwd.net"),
    ("AdMesh", "tags.admesh.io"),
    ("PopReach", "serve.popreach.org"),
    ("MediaBid", "bid.mediabid.net"),
]

_TRACKERS = [
    ("MetricsBeacon", "beacon.metricsbeacon.com"),
    ("UserInsight", "js.userinsight.net"),
    ("TrackPath", "t.trackpath.io"),
    ("StatWare", "stats.statware.org"),
    ("SessionGraph", "collect.sessiongraph.com"),
]

_CDNS = [
    ("LibCDN", "cdnlib.net"),
    ("FontHub", "fonts.fonthub.org"),
]


class ThirdPartyEcosystem:
    """The fixed cast of third parties plus lookup utilities."""

    def __init__(self) -> None:
        self.ad_networks: List[ThirdParty] = [
            ThirdParty(name, host, AD_CATEGORY) for name, host in _AD_NETWORKS
        ]
        self.trackers: List[ThirdParty] = [
            ThirdParty(name, host, TRACKER_CATEGORY)
            for name, host in _TRACKERS
        ]
        self.cdns: List[ThirdParty] = [
            ThirdParty(name, host, CDN_CATEGORY) for name, host in _CDNS
        ]
        self._by_host: Dict[str, ThirdParty] = {
            tp.host: tp for tp in self.all_parties()
        }

    def all_parties(self) -> List[ThirdParty]:
        return self.ad_networks + self.trackers + self.cdns

    def by_host(self, host: str) -> Optional[ThirdParty]:
        return self._by_host.get(host)

    def is_ad_host(self, host: str) -> bool:
        party = self.by_host(host)
        return party is not None and party.category == AD_CATEGORY

    def is_tracker_host(self, host: str) -> bool:
        party = self.by_host(host)
        return party is not None and party.category == TRACKER_CATEGORY

    def pick_ad_network(self, rng: random.Random) -> ThirdParty:
        return rng.choice(self.ad_networks)

    def pick_tracker(self, rng: random.Random) -> ThirdParty:
        return rng.choice(self.trackers)

    def pick_cdn(self, rng: random.Random) -> ThirdParty:
        return rng.choice(self.cdns)

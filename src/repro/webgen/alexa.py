"""The Alexa-style site ranking with traffic estimates.

The paper uses the Alexa top 10,000, which "collectively represent
approximately one third of all web visits", plus Alexa's per-site
monthly visit estimates for the traffic-weighted analysis of Figure 5.
Web traffic is famously Zipf-distributed; the ranking here assigns
visits(rank) ∝ 1/rank^0.9, which reproduces both the one-third-of-
the-web concentration and the long tail.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

_ZIPF_EXPONENT = 0.9
_BASE_MONTHLY_VISITS = 2_800_000_000.0  # rank-1 site, visits/month

_WORDS_A = [
    "news", "shop", "cloud", "media", "game", "tech", "travel", "food",
    "sport", "video", "music", "home", "auto", "health", "book", "photo",
    "social", "market", "bank", "learn", "movie", "daily", "web", "live",
    "data", "play", "world", "smart", "fast", "metro",
]
_WORDS_B = [
    "hub", "zone", "spot", "base", "port", "press", "point", "center",
    "direct", "link", "line", "werks", "nation", "scape", "villa",
    "stream", "sphere", "craft", "space", "gram", "city", "verse",
    "forge", "deck", "mill", "dock", "field", "peak", "ridge", "vault",
]
_TLDS = [".com", ".com", ".com", ".net", ".org", ".io", ".co.uk",
         ".com.br", ".co.jp", ".info"]


@dataclass(frozen=True)
class RankedSite:
    """One entry of the ranking."""

    rank: int  # 1-based
    domain: str
    monthly_visits: float


class AlexaRanking:
    """A deterministic ranking of ``n`` synthetic domains."""

    def __init__(self, n_sites: int = 10_000, seed: int = 10) -> None:
        if n_sites <= 0:
            raise ValueError("n_sites must be positive")
        self.n_sites = n_sites
        rng = random.Random(seed)
        used = set()
        self._sites: List[RankedSite] = []
        for rank in range(1, n_sites + 1):
            domain = self._make_domain(rng, used)
            visits = _BASE_MONTHLY_VISITS / (rank ** _ZIPF_EXPONENT)
            self._sites.append(RankedSite(rank, domain, visits))
        self._by_domain: Dict[str, RankedSite] = {
            s.domain: s for s in self._sites
        }
        self._total_visits = sum(s.monthly_visits for s in self._sites)

    @staticmethod
    def _make_domain(rng: random.Random, used: set) -> str:
        for _ in range(1000):
            name = rng.choice(_WORDS_A) + rng.choice(_WORDS_B)
            if rng.random() < 0.25:
                name += str(rng.randrange(2, 99))
            domain = name + rng.choice(_TLDS)
            if domain not in used:
                used.add(domain)
                return domain
        raise RuntimeError("domain namespace exhausted")

    # -- access -------------------------------------------------------------

    def top(self, n: int) -> List[RankedSite]:
        return self._sites[:n]

    def all(self) -> List[RankedSite]:
        return list(self._sites)

    def site(self, domain: str) -> RankedSite:
        return self._by_domain[domain]

    def __len__(self) -> int:
        return self.n_sites

    def __contains__(self, domain: str) -> bool:
        return domain in self._by_domain

    # -- traffic weighting ----------------------------------------------------

    def visit_weight(self, domain: str) -> float:
        """The fraction of all ranking traffic this site receives."""
        return self._by_domain[domain].monthly_visits / self._total_visits

    def weights(self) -> Dict[str, float]:
        return {s.domain: self.visit_weight(s.domain) for s in self._sites}

    def sample_by_traffic(
        self, rng: random.Random, n_distinct: int
    ) -> List[str]:
        """Sample distinct domains proportionally to visits.

        This is how the paper picked its 92 manual-validation sites:
        "chose 100 sites to visit randomly, but weighted each choice
        according to the proportion of visits that site gets".
        """
        if n_distinct > self.n_sites:
            raise ValueError("cannot sample more sites than exist")
        chosen: List[str] = []
        seen = set()
        domains = [s.domain for s in self._sites]
        weights = [s.monthly_visits for s in self._sites]
        while len(chosen) < n_distinct:
            domain = rng.choices(domains, weights=weights, k=1)[0]
            if domain not in seen:
                seen.add(domain)
                chosen.append(domain)
        return chosen

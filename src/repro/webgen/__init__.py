"""The deterministic synthetic web the crawl measures.

The paper crawls the live Alexa 10k; offline, this subpackage generates
a web with the same *measurable structure*: ranked domains with Zipf
traffic (:mod:`alexa`), an advertising/tracking third-party ecosystem
(:mod:`thirdparty`), per-standard usage profiles calibrated to the
paper's published Table 2 marginals (:mod:`profiles`), MiniJS script
synthesis (:mod:`scripts`) and site/page generation plus the
:class:`~repro.webgen.sitegen.SyntheticWeb` WebSource the network layer
serves from (:mod:`sitegen`).

Nothing downstream of this package knows the web is synthetic: the
browser, extension, blockers, monkey testing and analyses all operate
on served HTML and JavaScript, exactly as they would against the live
web.
"""

from repro.webgen.alexa import AlexaRanking
from repro.webgen.thirdparty import ThirdPartyEcosystem
from repro.webgen.profiles import GeneratorConfig, UsageProfiles
from repro.webgen.sitegen import Site, SyntheticWeb, build_web

__all__ = [
    "AlexaRanking",
    "ThirdPartyEcosystem",
    "GeneratorConfig",
    "UsageProfiles",
    "Site",
    "SyntheticWeb",
    "build_web",
]

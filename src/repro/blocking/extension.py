"""The browser-extension interface and the study's browsing conditions."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.blocking.abp import FilterList
from repro.blocking.ghostery import TrackerDatabase
from repro.net.resources import Request


class BlockingExtension:
    """Base class: a request gate installed into the browser's fetcher."""

    name = "extension"

    def should_block(self, request: Request) -> bool:
        raise NotImplementedError

    #: Requests this extension vetoed (diagnostics / stats).
    def __init__(self) -> None:
        self.blocked_count = 0

    def gate(self, request: Request) -> bool:
        """Fetcher-observer adapter: True = allow, False = block."""
        if self.should_block(request):
            self.blocked_count += 1
            return False
        return True


class AdBlockPlus(BlockingExtension):
    """AdBlock Plus: crowd-sourced URL filters + element hiding."""

    name = "adblock-plus"

    def __init__(self, filter_list: FilterList) -> None:
        super().__init__()
        self.filter_list = filter_list

    def should_block(self, request: Request) -> bool:
        return self.filter_list.should_block(request)


class Ghostery(BlockingExtension):
    """Ghostery: curated tracker database."""

    name = "ghostery"

    def __init__(self, database: TrackerDatabase) -> None:
        super().__init__()
        self.database = database

    def should_block(self, request: Request) -> bool:
        return self.database.should_block(request)


class BrowsingCondition:
    """Which extensions are installed for a crawl pass.

    The paper's two headline conditions are DEFAULT and BLOCKING (both
    extensions); the Figure 7 analysis additionally runs each extension
    alone.
    """

    DEFAULT = "default"
    BLOCKING = "blocking"
    ABP_ONLY = "abp-only"
    GHOSTERY_ONLY = "ghostery-only"

    ALL = (DEFAULT, BLOCKING, ABP_ONLY, GHOSTERY_ONLY)

    @staticmethod
    def extensions_for(
        condition: str,
        filter_list: Optional[FilterList] = None,
        tracker_db: Optional[TrackerDatabase] = None,
    ) -> List[BlockingExtension]:
        """Instantiate the extension set for a condition."""
        if condition not in BrowsingCondition.ALL:
            raise ValueError("unknown browsing condition %r" % condition)
        extensions: List[BlockingExtension] = []
        if condition in (BrowsingCondition.BLOCKING,
                         BrowsingCondition.ABP_ONLY):
            if filter_list is None:
                raise ValueError("condition %r needs a filter list" % condition)
            extensions.append(AdBlockPlus(filter_list))
        if condition in (BrowsingCondition.BLOCKING,
                         BrowsingCondition.GHOSTERY_ONLY):
            if tracker_db is None:
                raise ValueError("condition %r needs a tracker db" % condition)
            extensions.append(Ghostery(tracker_db))
        return extensions

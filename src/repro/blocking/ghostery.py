"""A Ghostery-style tracker database.

Ghostery ships a curated database of tracker "bugs": known analytics,
advertising-tracking and beacon endpoints, each identified by host (and
optionally path) patterns and grouped into categories.  When a page
requests a resource matching a bug, the extension prevents the load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.net.resources import Request
from repro.net.url import Url


@dataclass(frozen=True)
class TrackerEntry:
    """One tracker in the database."""

    name: str
    category: str  # "site-analytics" | "advertising" | "social" | ...
    host_suffixes: tuple
    path_substring: str = ""

    def matches(self, url: Url) -> bool:
        host = url.host
        for suffix in self.host_suffixes:
            if host == suffix or host.endswith("." + suffix):
                if self.path_substring and (
                    self.path_substring not in url.path
                ):
                    continue
                return True
        return False


class TrackerDatabase:
    """The bug database plus matching, with per-category toggles."""

    def __init__(self, entries: Optional[Sequence[TrackerEntry]] = None) -> None:
        self.entries: List[TrackerEntry] = list(entries or [])
        #: category -> enabled; users can un-block categories in the UI.
        self.enabled_categories: Dict[str, bool] = {}

    def add(self, entry: TrackerEntry) -> None:
        self.entries.append(entry)

    def set_category_enabled(self, category: str, enabled: bool) -> None:
        self.enabled_categories[category] = enabled

    def _category_active(self, category: str) -> bool:
        return self.enabled_categories.get(category, True)

    def match(self, url: Url) -> Optional[TrackerEntry]:
        for entry in self.entries:
            if self._category_active(entry.category) and entry.matches(url):
                return entry
        return None

    def should_block(self, request: Request) -> bool:
        """Block matching tracker resources.

        First-party analytics (the site measuring itself on its own
        domain) is out of scope for Ghostery's cross-site tracking
        model, so only third-party requests are considered.
        """
        if not request.is_third_party:
            return False
        return self.match(request.url) is not None

    def __len__(self) -> int:
        return len(self.entries)

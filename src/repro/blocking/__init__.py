"""Content-blocking extensions: AdBlock Plus and Ghostery equivalents.

The paper measures every site twice — once stock, once with AdBlock
Plus (crowd-sourced URL filter rules + element hiding) and Ghostery
(curated tracker database) installed (sections 3.6, 4.3.2).  This
subpackage implements both mechanisms:

* :mod:`repro.blocking.abp` — a parser/matcher for the AdBlock Plus
  filter syntax subset real lists use (anchors, wildcards, separators,
  resource-type and party options, ``@@`` exceptions, ``##`` element
  hiding).
* :mod:`repro.blocking.ghostery` — a tracker "bug" database keyed by
  host suffixes, with categories.
* :mod:`repro.blocking.lists` — the built-in filter list and tracker
  database written against the synthetic web's ad/tracker ecosystem.
* :mod:`repro.blocking.extension` — the request-gate interface the
  browser installs as a fetcher observer, plus the four browsing
  conditions the study uses (default / ABP-only / Ghostery-only /
  both).
"""

from repro.blocking.abp import AbpFilter, FilterList, FilterParseError
from repro.blocking.ghostery import TrackerDatabase, TrackerEntry
from repro.blocking.extension import (
    AdBlockPlus,
    BlockingExtension,
    BrowsingCondition,
    Ghostery,
)

__all__ = [
    "AbpFilter",
    "FilterList",
    "FilterParseError",
    "TrackerDatabase",
    "TrackerEntry",
    "AdBlockPlus",
    "BlockingExtension",
    "BrowsingCondition",
    "Ghostery",
]

"""AdBlock Plus filter syntax: parsing and matching.

Implements the subset of the ABP filter language that real lists
(EasyList and friends) lean on:

* plain substring patterns, with ``*`` wildcards
* ``||example.com^`` — domain-anchor: matches the host or any subdomain
* ``|...`` / ``...|`` — start / end anchors
* ``^`` — separator placeholder (any non-alphanumeric, non-``%_-.``
  character, or the end of the URL)
* ``$`` options: resource types (``script``, ``image``, ``stylesheet``,
  ``xmlhttprequest``, ``subdocument``, ``beacon``, ``other``), their
  ``~`` negations, ``third-party`` / ``~third-party``, and
  ``domain=a.com|~b.com`` restrictions
* ``@@`` exception rules
* ``##selector`` element-hiding rules (global or per-domain)
* ``!`` comments and blank lines
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.net.resources import Request, ResourceKind
from repro.net.url import Url


class FilterParseError(ValueError):
    """A filter line that cannot be understood."""


_TYPE_OPTIONS = {
    "script": ResourceKind.SCRIPT,
    "image": ResourceKind.IMAGE,
    "stylesheet": ResourceKind.STYLESHEET,
    "xmlhttprequest": ResourceKind.XHR,
    "subdocument": ResourceKind.SUBDOCUMENT,
    "beacon": ResourceKind.BEACON,
    "document": ResourceKind.DOCUMENT,
    "other": ResourceKind.OTHER,
}

_SEPARATOR_CLASS = r"(?:[^0-9a-zA-Z%_.\-]|$)"


@dataclass(frozen=True)
class AbpFilter:
    """One compiled network filter rule."""

    raw: str
    pattern: "re.Pattern[str]"
    is_exception: bool
    include_types: Optional[FrozenSet[str]]
    exclude_types: FrozenSet[str]
    third_party: Optional[bool]
    include_domains: FrozenSet[str]
    exclude_domains: FrozenSet[str]

    def matches(self, request: Request) -> bool:
        if self.include_types is not None and (
            request.kind not in self.include_types
        ):
            return False
        if request.kind in self.exclude_types:
            return False
        if self.third_party is not None and (
            request.is_third_party != self.third_party
        ):
            return False
        if self.include_domains or self.exclude_domains:
            page = request.first_party
            page_domain = page.registrable_domain if page else ""
            if self.include_domains and page_domain not in self.include_domains:
                return False
            if page_domain in self.exclude_domains:
                return False
        return self.pattern.search(str(request.url)) is not None


@dataclass(frozen=True)
class HidingRule:
    """One element-hiding rule: ``domains##selector``."""

    selector: str
    domains: FrozenSet[str] = frozenset()

    def applies_to(self, page: Url) -> bool:
        if not self.domains:
            return True
        return page.registrable_domain in self.domains


def _compile_pattern(pattern: str) -> "re.Pattern[str]":
    """Translate an ABP URL pattern into a regex."""
    anchored_start = False
    anchored_end = False
    domain_anchor = False
    if pattern.startswith("||"):
        domain_anchor = True
        pattern = pattern[2:]
    elif pattern.startswith("|"):
        anchored_start = True
        pattern = pattern[1:]
    if pattern.endswith("|"):
        anchored_end = True
        pattern = pattern[:-1]

    parts: List[str] = []
    for ch in pattern:
        if ch == "*":
            parts.append(".*")
        elif ch == "^":
            parts.append(_SEPARATOR_CLASS)
        else:
            parts.append(re.escape(ch))
    body = "".join(parts)

    if domain_anchor:
        # Match at a host-label boundary within the URL's authority.
        prefix = r"^[a-z]+://([^/]*\.)?"
    elif anchored_start:
        prefix = "^"
    else:
        prefix = ""
    suffix = "$" if anchored_end else ""
    return re.compile(prefix + body + suffix)


def parse_filter(line: str) -> Optional[object]:
    """Parse one list line into an AbpFilter / HidingRule / None.

    None for comments and blanks; raises FilterParseError for garbage.
    """
    text = line.strip()
    if not text or text.startswith("!") or text.startswith("["):
        return None
    if "##" in text:
        domains_part, selector = text.split("##", 1)
        if not selector.strip():
            raise FilterParseError("empty hiding selector: %r" % line)
        domains = frozenset(
            d.strip().lower()
            for d in domains_part.split(",")
            if d.strip()
        )
        return HidingRule(selector=selector.strip(), domains=domains)

    is_exception = text.startswith("@@")
    if is_exception:
        text = text[2:]

    options_text = ""
    dollar = text.rfind("$")
    if dollar >= 0:
        options_text = text[dollar + 1:]
        text = text[:dollar]
    if not text:
        raise FilterParseError("empty pattern: %r" % line)

    include_types: Optional[set] = None
    exclude_types: set = set()
    third_party: Optional[bool] = None
    include_domains: set = set()
    exclude_domains: set = set()

    for option in filter(None, options_text.split(",")):
        option = option.strip().lower()
        if option == "third-party":
            third_party = True
        elif option == "~third-party":
            third_party = False
        elif option.startswith("domain="):
            for domain in option[len("domain="):].split("|"):
                domain = domain.strip()
                if domain.startswith("~"):
                    exclude_domains.add(domain[1:])
                elif domain:
                    include_domains.add(domain)
        elif option in _TYPE_OPTIONS:
            if include_types is None:
                include_types = set()
            include_types.add(_TYPE_OPTIONS[option])
        elif option.startswith("~") and option[1:] in _TYPE_OPTIONS:
            exclude_types.add(_TYPE_OPTIONS[option[1:]])
        else:
            raise FilterParseError(
                "unsupported option %r in %r" % (option, line)
            )

    return AbpFilter(
        raw=line.strip(),
        pattern=_compile_pattern(text),
        is_exception=is_exception,
        include_types=(
            frozenset(include_types) if include_types is not None else None
        ),
        exclude_types=frozenset(exclude_types),
        third_party=third_party,
        include_domains=frozenset(include_domains),
        exclude_domains=frozenset(exclude_domains),
    )


class FilterList:
    """A parsed filter list with ABP decision semantics.

    Decision: a request is blocked iff some block rule matches and no
    exception (``@@``) rule matches.
    """

    def __init__(self, lines: Optional[Sequence[str]] = None) -> None:
        self.block_filters: List[AbpFilter] = []
        self.exception_filters: List[AbpFilter] = []
        self.hiding_rules: List[HidingRule] = []
        self.skipped: List[Tuple[str, str]] = []
        if lines:
            self.extend(lines)

    def extend(self, lines: Sequence[str]) -> None:
        for line in lines:
            try:
                rule = parse_filter(line)
            except FilterParseError as error:
                # Real ad blockers skip unparseable rules, loudly.
                self.skipped.append((line, str(error)))
                continue
            if rule is None:
                continue
            if isinstance(rule, HidingRule):
                self.hiding_rules.append(rule)
            elif rule.is_exception:
                self.exception_filters.append(rule)
            else:
                self.block_filters.append(rule)

    def should_block(self, request: Request) -> bool:
        if not any(f.matches(request) for f in self.block_filters):
            return False
        return not any(f.matches(request) for f in self.exception_filters)

    def matching_filter(self, request: Request) -> Optional[AbpFilter]:
        """The first block rule matching, for diagnostics."""
        for rule in self.block_filters:
            if rule.matches(request):
                return rule
        return None

    def hiding_selectors_for(self, page: Url) -> List[str]:
        return [
            rule.selector
            for rule in self.hiding_rules
            if rule.applies_to(page)
        ]

    def __len__(self) -> int:
        return (
            len(self.block_filters)
            + len(self.exception_filters)
            + len(self.hiding_rules)
        )

"""The built-in filter list and tracker database.

These play the role of EasyList (for AdBlock Plus) and the Ghostery bug
database: hand-maintained rules that recognize the ad/tracker ecosystem
of :mod:`repro.webgen.thirdparty`.  As on the real web, the two tools
overlap: the ad filter list also carries a few tracker rules, and the
tracker database knows about ad-network beacons — which is why the
paper's Figure 7 finds standards blocked by both kinds of extension.
"""

from __future__ import annotations

from typing import List

from repro.blocking.abp import FilterList
from repro.blocking.ghostery import TrackerDatabase, TrackerEntry
from repro.webgen.thirdparty import (
    AD_CATEGORY,
    TRACKER_CATEGORY,
    ThirdPartyEcosystem,
)


def builtin_filter_list(
    ecosystem: ThirdPartyEcosystem = None,
) -> FilterList:
    """An EasyList-style list covering the synthetic ad networks.

    Includes domain-anchored script rules for every ad network, generic
    path rules (``/banner/``, ``/popunder.``), element-hiding rules for
    ad containers, one exception rule (a "acceptable ads"-style
    carve-out for a CDN that a broad rule would otherwise catch), and —
    as in the real EasyList privacy sections — rules for a couple of
    the most notorious trackers.
    """
    ecosystem = ecosystem or ThirdPartyEcosystem()
    lines: List[str] = [
        "! repro synthetic easylist",
        "! ---- ad networks ----",
    ]
    for network in ecosystem.ad_networks:
        lines.append("||%s^$third-party" % _registrable(network.host))
    lines.extend(
        [
            "! ---- generic ad paths ----",
            "/banner/*$image,third-party",
            "/popunder.",
            "&ad_slot=",
            "! ---- easyprivacy-style tracker rules ----",
            "||%s^$script,third-party" % _registrable(
                ecosystem.trackers[0].host
            ),
            "! ---- exceptions ----",
            "@@||cdnlib.net^$script",
            "! ---- element hiding ----",
            "##.ad-banner",
            "##.sponsored-box",
            "###ad-container",
        ]
    )
    return FilterList(lines)


def builtin_tracker_database(
    ecosystem: ThirdPartyEcosystem = None,
) -> TrackerDatabase:
    """A Ghostery-style database covering the synthetic trackers.

    Every tracker host is a bug; additionally the ad networks' beacon
    endpoints are known (Ghostery's advertising category), giving the
    realistic overlap where a tracking blocker also suppresses some
    advertising resources.
    """
    ecosystem = ecosystem or ThirdPartyEcosystem()
    entries: List[TrackerEntry] = []
    for tracker in ecosystem.trackers:
        entries.append(
            TrackerEntry(
                name=tracker.name,
                category=TRACKER_CATEGORY,
                host_suffixes=(_registrable(tracker.host), tracker.host),
            )
        )
    # Ad networks' measurement beacons are in the advertising category.
    for network in ecosystem.ad_networks[:2]:
        entries.append(
            TrackerEntry(
                name=network.name + " Beacon",
                category=AD_CATEGORY,
                host_suffixes=(network.host,),
                path_substring="/px",
            )
        )
    return TrackerDatabase(entries)


def _registrable(host: str) -> str:
    labels = host.split(".")
    return ".".join(labels[-2:])

"""Chaos-injecting web sources (the hostile half of the crawl tests).

:class:`ChaosSource` wraps any :class:`~repro.net.fetcher.WebSource`
and makes chosen domains exhibit the pathologies a *source-level*
fault can model:

* **hang** — ``respond()`` blocks in ``time.sleep`` on the domain's
  document request.  From the crawl's perspective the worker is hung
  mid-fetch; only the supervisor's watchdog (stale heartbeat → SIGKILL
  → respawn → quarantine) gets the run moving again.
* **crash** — ``respond()`` takes the whole worker process down with
  ``os._exit``, the moral equivalent of a page segfaulting the
  browser.  The supervisor sees a dead worker holding a site.
* **flaky** — every request to the domain fails its first ``k`` wire
  attempts with a transient reset, then succeeds.  Stateless: the
  verdict reads ``request.attempt`` (stamped by the fetcher's retry
  loop), so serial, parallel and resumed crawls see identical
  behavior with no per-URL counters to diverge.
* **truncate** — document bodies are cut to a prefix, the classic
  mid-transfer connection drop.  Exercises the HTML parser's
  recovering mode.
* **garbage** — the second half of document bodies is deterministically
  corrupted (control bytes included), modeling line noise /
  mis-encoded content.  Also a parser-recovery case.
* **slow** — document responses carry a synthetic-latency header the
  fetcher credits to the visit's VirtualClock, so a molasses origin
  burns deadline budget without any process sleeping.

Resource-exhaustion pathologies (step storms, allocation bombs, DOM
floods...) live in :mod:`repro.webgen.hostile` instead — they are
properties of page *content*, not of the network.

Domain sets accept the ``"*"`` wildcard to match every host (the
flaky-web acceptance test arms flakiness globally that way).

Unknown attributes delegate to the wrapped source (like
:class:`~repro.net.fetcher.FaultInjectingSource`), so a wrapped
synthetic web still exposes its ranking, sites and script bodies to
the survey runner.
"""

from __future__ import annotations

import os
import time
from typing import FrozenSet, Iterable, Optional

from repro.net.fetcher import TransientNetworkError
from repro.net.resilience import ALL_HOSTS, SYNTHETIC_DELAY_HEADER
from repro.net.resources import Request, ResourceKind, Response

#: exit status a crash-injected worker dies with (visible in tests)
CRASH_EXIT_CODE = 73


def _matches(domains: FrozenSet[str], host: str) -> bool:
    return host in domains or ALL_HOSTS in domains


class ChaosSource:
    """A WebSource wrapper arming network pathologies on chosen domains."""

    def __init__(
        self,
        inner,
        hang_domains: Iterable[str] = (),
        crash_domains: Iterable[str] = (),
        hang_seconds: float = 3600.0,
        flaky_domains: Iterable[str] = (),
        flaky_failures: int = 1,
        truncate_domains: Iterable[str] = (),
        truncate_fraction: float = 0.5,
        garbage_domains: Iterable[str] = (),
        slow_domains: Iterable[str] = (),
        slow_seconds: float = 45.0,
    ) -> None:
        self._inner = inner
        self._hang = frozenset(hang_domains)
        self._crash = frozenset(crash_domains)
        self.hang_seconds = hang_seconds
        self._flaky = frozenset(flaky_domains)
        self.flaky_failures = max(0, flaky_failures)
        self._truncate = frozenset(truncate_domains)
        self.truncate_fraction = truncate_fraction
        self._garbage = frozenset(garbage_domains)
        self._slow = frozenset(slow_domains)
        self.slow_seconds = slow_seconds

    def __getattr__(self, name: str):
        if name == "_inner":
            # During unpickling __getattr__ runs before __init__ has
            # set _inner; without this guard the lookup recurses.
            raise AttributeError(name)
        return getattr(self._inner, name)

    def respond(self, request: Request) -> Optional[Response]:
        host = request.url.host
        if request.kind == ResourceKind.DOCUMENT:
            if host in self._hang:
                # Long enough that only the watchdog ends it; bounded
                # so an unsupervised (serial) caller that reaches a
                # hang site by mistake eventually gets control back.
                time.sleep(self.hang_seconds)
                return None
            if host in self._crash:
                os._exit(CRASH_EXIT_CODE)
        if (_matches(self._flaky, host)
                and getattr(request, "attempt", 1) <= self.flaky_failures):
            raise TransientNetworkError(request.url, "flaky reset")
        response = self._inner.respond(request)
        if response is None or request.kind != ResourceKind.DOCUMENT:
            return response
        if _matches(self._truncate, host):
            response = self._truncated(response)
        if _matches(self._garbage, host):
            response = self._garbled(response)
        if _matches(self._slow, host):
            headers = dict(response.headers)
            headers[SYNTHETIC_DELAY_HEADER] = repr(self.slow_seconds)
            response = Response(
                url=response.url, status=response.status,
                content_type=response.content_type,
                body=response.body, headers=headers,
            )
        return response

    def _truncated(self, response: Response) -> Response:
        cut = int(len(response.body) * self.truncate_fraction)
        return Response(
            url=response.url, status=response.status,
            content_type=response.content_type,
            body=response.body[:cut], headers=dict(response.headers),
        )

    def _garbled(self, response: Response) -> Response:
        """Corrupt the second half of the body, deterministically.

        Every fourth character is replaced by a C0 control byte derived
        from its position and original value (never ``\\t``/``\\n``/
        ``\\f``/``\\r``, which browsers treat as whitespace), so the
        same document garbles the same way in every process — and the
        recovering parser is guaranteed a ``control-chars`` salvage.
        """
        body = response.body
        half = len(body) // 2
        garbled = []
        for index, char in enumerate(body[half:]):
            if index % 4 == 0:
                code = (index * 37 + ord(char)) % 31 + 1  # 1..31
                if code in (9, 10, 12, 13):
                    code = 1
                garbled.append(chr(code))
            else:
                garbled.append(char)
        return Response(
            url=response.url, status=response.status,
            content_type=response.content_type,
            body=body[:half] + "".join(garbled),
            headers=dict(response.headers),
        )

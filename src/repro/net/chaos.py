"""Chaos-injecting web sources (the hostile half of the crawl tests).

:class:`ChaosSource` wraps any :class:`~repro.net.fetcher.WebSource`
and makes chosen domains exhibit the two pathologies a *source-level*
fault can model:

* **hang** — ``respond()`` blocks in ``time.sleep`` on the domain's
  document request.  From the crawl's perspective the worker is hung
  mid-fetch; only the supervisor's watchdog (stale heartbeat → SIGKILL
  → respawn → quarantine) gets the run moving again.
* **crash** — ``respond()`` takes the whole worker process down with
  ``os._exit``, the moral equivalent of a page segfaulting the
  browser.  The supervisor sees a dead worker holding a site.

Resource-exhaustion pathologies (step storms, allocation bombs, DOM
floods...) live in :mod:`repro.webgen.hostile` instead — they are
properties of page *content*, not of the network.

Unknown attributes delegate to the wrapped source (like
:class:`~repro.net.fetcher.FaultInjectingSource`), so a wrapped
synthetic web still exposes its ranking, sites and script bodies to
the survey runner.
"""

from __future__ import annotations

import os
import time
from typing import Iterable, Optional

from repro.net.resources import Request, ResourceKind, Response

#: exit status a crash-injected worker dies with (visible in tests)
CRASH_EXIT_CODE = 73


class ChaosSource:
    """A WebSource wrapper that hangs or kills on chosen domains."""

    def __init__(
        self,
        inner,
        hang_domains: Iterable[str] = (),
        crash_domains: Iterable[str] = (),
        hang_seconds: float = 3600.0,
    ) -> None:
        self._inner = inner
        self._hang = frozenset(hang_domains)
        self._crash = frozenset(crash_domains)
        self.hang_seconds = hang_seconds

    def __getattr__(self, name: str):
        if name == "_inner":
            # During unpickling __getattr__ runs before __init__ has
            # set _inner; without this guard the lookup recurses.
            raise AttributeError(name)
        return getattr(self._inner, name)

    def respond(self, request: Request) -> Optional[Response]:
        if request.kind == ResourceKind.DOCUMENT:
            host = request.url.host
            if host in self._hang:
                # Long enough that only the watchdog ends it; bounded
                # so an unsupervised (serial) caller that reaches a
                # hang site by mistake eventually gets control back.
                time.sleep(self.hang_seconds)
                return None
            if host in self._crash:
                os._exit(CRASH_EXIT_CODE)
        return self._inner.respond(request)

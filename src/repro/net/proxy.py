"""The instrumentation-injecting proxy.

Figure 2 of the paper: every browser request flows through a proxy that
injects the measuring hooks "at the beginning of <head>" so the DOM is
modified before any page content runs.  This class reproduces that
rewrite on HTML responses; everything else passes through untouched.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.minijs.compile import shared_cache
from repro.minijs.errors import JSLexError, JSParseError
from repro.net.fetcher import Fetcher
from repro.net.resources import Request, Response
from repro.timing import phase

_HEAD_OPEN_RE = re.compile(r"<head(\s[^>]*)?>", re.IGNORECASE)
_HTML_OPEN_RE = re.compile(r"<html(\s[^>]*)?>", re.IGNORECASE)


class InjectingProxy:
    """Wraps a Fetcher, injecting a script into HTML documents."""

    def __init__(self, fetcher: Fetcher,
                 injected_script: Optional[str] = None) -> None:
        self._fetcher = fetcher
        self._injected = injected_script
        self.documents_rewritten = 0
        self._precompile_injected()

    @property
    def fetcher(self) -> Fetcher:
        return self._fetcher

    def set_injected_script(self, source: Optional[str]) -> None:
        self._injected = source
        self._precompile_injected()

    def _precompile_injected(self) -> None:
        """Warm the shared compile cache with the instrumentation.

        The injected payload runs on *every* page the proxy rewrites;
        compiling it once at set time means even the first page load of
        a crawl executes it from the cache.
        """
        if not self._injected:
            return
        try:
            shared_cache().compile(self._injected)
        except (JSLexError, JSParseError):
            pass  # surfaced as a script error at execution time

    def fetch(self, request: Request) -> Response:
        # Failures pass through untouched: a NetworkError (and its
        # ``transient`` flag, which the survey RetryPolicy keys on) or
        # a BudgetExceeded from the fetcher must reach the browser
        # exactly as raised — the proxy only ever rewrites *successful*
        # HTML responses.
        with phase("fetch"):
            response = self._fetcher.fetch(request)
        if self._injected and response.is_html:
            response = Response(
                url=response.url,
                status=response.status,
                content_type=response.content_type,
                body=self.inject(response.body),
                headers=dict(response.headers),
            )
            self.documents_rewritten += 1
        return response

    def inject(self, html: str) -> str:
        """Place the instrumentation at the start of <head>.

        When a page has no <head>, inject immediately after <html> (or
        at the top of the document as a last resort) — before any other
        markup either way, so no page script can run first.
        """
        tag = "<script>%s</script>" % (self._injected or "")
        match = _HEAD_OPEN_RE.search(html)
        if match is not None:
            insert_at = match.end()
            return html[:insert_at] + tag + html[insert_at:]
        match = _HTML_OPEN_RE.search(html)
        if match is not None:
            insert_at = match.end()
            return html[:insert_at] + "<head>" + tag + "</head>" + html[insert_at:]
        return "<head>" + tag + "</head>" + html

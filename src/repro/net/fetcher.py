"""Fetching documents and subresources from a web source.

:class:`WebSource` is the interface a "web" must implement to be
crawlable (the synthetic web implements it; a test double can too).
:class:`Fetcher` layers request accounting and failure semantics on
top: unknown hosts raise :class:`NetworkError` the way a dead domain
times out, and unresponsive sites stay unresponsive — the paper could
not measure 267 of the Alexa 10k for exactly these reasons.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol

from repro.net.resources import Request, Response
from repro.net.url import Url


class NetworkError(Exception):
    """Host unreachable / connection refused / timeout."""

    def __init__(self, url: Url, reason: str) -> None:
        super().__init__("%s: %s" % (url, reason))
        self.url = url
        self.reason = reason


class WebSource(Protocol):
    """Anything that can serve responses for URLs."""

    def respond(self, request: Request) -> Optional[Response]:
        """Return a response, or None when the host does not exist."""


class Fetcher:
    """Issues requests against a web source, with accounting.

    ``request_log`` records every request issued (the crawl statistics
    in Table 1 come from here); ``observers`` get a callback per request
    so blocking extensions can veto loads *before* they happen, which is
    where AdBlock Plus and Ghostery actually intervene.
    """

    def __init__(self, source: WebSource) -> None:
        self._source = source
        self.requests_issued = 0
        self.requests_failed = 0
        self._observers: List[Callable[[Request], bool]] = []

    def add_observer(self, observer: Callable[[Request], bool]) -> None:
        """Register a request gate; returning False blocks the request."""
        self._observers.append(observer)

    def clear_observers(self) -> None:
        self._observers = []

    def fetch(self, request: Request) -> Response:
        """Fetch a resource; raises NetworkError on failure or block.

        A blocked request raises with reason ``"blocked"`` so callers
        can distinguish extension vetoes from dead hosts.
        """
        self.requests_issued += 1
        for observer in self._observers:
            if not observer(request):
                self.requests_failed += 1
                raise NetworkError(request.url, "blocked")
        response = self._source.respond(request)
        if response is None:
            self.requests_failed += 1
            raise NetworkError(request.url, "host not found")
        if not response.ok:
            self.requests_failed += 1
            raise NetworkError(
                request.url, "HTTP %d" % response.status
            )
        return response


class DictWebSource:
    """A trivial WebSource backed by a {url-string: Response} dict.

    Used by tests and examples that need a hand-built two-page web.
    """

    def __init__(self, pages: Optional[Dict[str, Response]] = None) -> None:
        self.pages: Dict[str, Response] = dict(pages or {})

    def add_html(self, url: str, body: str) -> None:
        parsed = Url.parse(url)
        self.pages[str(parsed)] = Response(
            url=parsed, content_type="text/html", body=body
        )

    def add_script(self, url: str, body: str) -> None:
        parsed = Url.parse(url)
        self.pages[str(parsed)] = Response(
            url=parsed, content_type="application/javascript", body=body
        )

    def respond(self, request: Request) -> Optional[Response]:
        return self.pages.get(str(request.url))

"""Fetching documents and subresources from a web source.

:class:`WebSource` is the interface a "web" must implement to be
crawlable (the synthetic web implements it; a test double can too).
:class:`Fetcher` layers request accounting and failure semantics on
top: unknown hosts raise :class:`NetworkError` the way a dead domain
times out, and unresponsive sites stay unresponsive — the paper could
not measure 267 of the Alexa 10k for exactly these reasons.

The fetcher is also where the resilience layer
(:mod:`repro.net.resilience`) lives: per-request retries with
deterministic VirtualClock-charged backoff, and per-origin circuit
breakers.  The default :class:`ResilienceConfig` is inert, so a bare
``Fetcher(source)`` behaves exactly like the pre-resilience one.
"""

from __future__ import annotations

from dataclasses import replace
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Set,
    Tuple,
)

from repro import obs
from repro.core.sandbox import heartbeat
from repro.net.resilience import (
    SYNTHETIC_DELAY_HEADER,
    ResilienceConfig,
    ResilienceState,
)
from repro.net.resources import Request, ResourceKind, Response
from repro.net.url import Url


class NetworkError(Exception):
    """Host unreachable / connection refused / timeout.

    ``transient`` distinguishes failures worth retrying (an overloaded
    host, a dropped connection) from deterministic ones (NXDOMAIN, a
    page that always serves HTTP 404): the retry layers re-attempt
    only the former by default, since re-running a deterministic
    failure just repeats it.  ``attempts`` is stamped by the fetcher
    with how many wire attempts it spent before giving up (0 when a
    circuit breaker fast-failed the request without touching the
    wire); the browser copies it onto the degraded-resource record.
    """

    def __init__(
        self, url: Url, reason: str, transient: bool = False
    ) -> None:
        super().__init__("%s: %s" % (url, reason))
        self.url = url
        self.reason = reason
        self.transient = transient
        self.attempts = 1


class TransientNetworkError(NetworkError):
    """A failure that may succeed on retry (timeout, reset, overload)."""

    def __init__(self, url: Url, reason: str) -> None:
        super().__init__(url, reason, transient=True)


class WebSource(Protocol):
    """Anything that can serve responses for URLs."""

    def respond(self, request: Request) -> Optional[Response]:
        """Return a response, or None when the host does not exist."""


def classify_status(status: int) -> bool:
    """Is an HTTP error status transient (worth a retry)?

    5xx is the server falling over and 429 is it asking for backoff —
    both may clear on retry.  4xx (other than 429) is a deterministic
    answer about the resource: retrying a 404 just re-fetches the 404.
    """
    return status >= 500 or status == 429


class Fetcher:
    """Issues requests against a web source, with accounting.

    ``observers`` get a callback per request so blocking extensions can
    veto loads *before* they happen, which is where AdBlock Plus and
    Ghostery actually intervene.  Counter semantics:

    * ``requests_issued`` — every ``fetch()`` call (the crawl
      statistics in Table 1 come from here);
    * ``requests_blocked`` — extension vetoes.  Deliberately **not**
      counted as failed: a veto is policy, not a dead host;
    * ``requests_failed`` — requests that exhausted every attempt;
    * ``requests_retried`` — extra wire attempts beyond the first;
    * ``requests_short_circuited`` — fast-failed by an open breaker;
    * ``breaker_opens`` — origin breakers tripping open;
    * ``bytes_fetched`` — response body bytes delivered to callers.
    """

    def __init__(
        self,
        source: WebSource,
        resilience: Optional[ResilienceConfig] = None,
    ) -> None:
        self._source = source
        self.resilience = resilience or ResilienceConfig()
        self._state = ResilienceState(self.resilience)
        self.requests_issued = 0
        self.requests_failed = 0
        self.requests_blocked = 0
        self.requests_retried = 0
        self.requests_short_circuited = 0
        self.breaker_opens = 0
        self.bytes_fetched = 0
        self._observers: List[Callable[[Request], bool]] = []
        #: The active visit's budget meter (repro.core.sandbox),
        #: installed by the browser around each page so fetch storms
        #: charge the per-page cap.  None = unmetered.
        self.budget_meter = None

    def add_observer(self, observer: Callable[[Request], bool]) -> None:
        """Register a request gate; returning False blocks the request."""
        self._observers.append(observer)

    def clear_observers(self) -> None:
        self._observers = []

    def reset_round(self) -> None:
        """Forget per-round resilience state (circuit breakers).

        The crawler calls this at the top of every visit round so
        breaker history never leaks across rounds — which is what keeps
        parallel and resumed crawls bit-identical to serial ones.
        """
        self._state.reset_round()

    def breaker_states(self) -> Dict[str, Tuple[str, int]]:
        """origin -> (breaker state, times opened), for telemetry."""
        return self._state.breaker_states()

    def fetch(self, request: Request) -> Response:
        """Fetch a resource; raises NetworkError on failure or block.

        A blocked request raises with reason ``"blocked"`` so callers
        can distinguish extension vetoes from dead hosts.  Transient
        failures are retried per the resilience config, each extra
        attempt charging the page's fetch budget and advancing the
        virtual clock by the seeded backoff delay — never sleeping.
        """
        self.requests_issued += 1
        # Touching the (possibly hostile) web source is the one place a
        # crawl worker can genuinely block, so signal liveness to the
        # watchdog just before — a hung respond() leaves the heartbeat
        # stale and the supervisor kills the worker.
        heartbeat()
        meter = self.budget_meter
        if meter is not None:
            meter.charge_fetch()
        for observer in self._observers:
            if not observer(request):
                self.requests_blocked += 1
                raise NetworkError(request.url, "blocked")

        config = self.resilience
        attempts = max(1, config.request_attempts)
        breaker = self._state.breaker_for(request.url.host)
        failure: Optional[NetworkError] = None
        made = 0
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                # The extra wire attempt costs what a real one would:
                # one unit of the page's fetch budget plus the policy's
                # backoff, served on the virtual clock.
                self.requests_retried += 1
                obs.event("net:retry", url=str(request.url),
                          attempt=attempt)
                heartbeat()
                if meter is not None:
                    meter.advance_clock_ms(1000.0 * config.delay(
                        str(request.url), attempt - 1
                    ))
                    meter.charge_fetch()
            if breaker is not None and not breaker.allow():
                self.requests_short_circuited += 1
                obs.event("net:short-circuit",
                          origin=request.url.host)
                failure = TransientNetworkError(
                    request.url, "circuit-open"
                )
                break
            made = attempt
            wire_request = (
                request if attempt == 1
                else replace(request, attempt=attempt)
            )
            try:
                response = self._respond_once(wire_request, meter)
            except TransientNetworkError as error:
                failure = error
                if breaker is not None and breaker.record_failure():
                    self.breaker_opens += 1
                    obs.event("net:breaker-open",
                              origin=request.url.host)
                continue
            except NetworkError as error:
                failure = error
                break
            if breaker is not None:
                breaker.record_success()
            self.bytes_fetched += len(response.body)
            return response
        self.requests_failed += 1
        assert failure is not None
        failure.attempts = made
        raise failure

    def _respond_once(
        self, request: Request, meter
    ) -> Response:
        """One wire attempt: classify the outcome, credit latency."""
        response = self._source.respond(request)
        if response is None:
            raise NetworkError(request.url, "host not found")
        # A slow origin's synthetic latency burns deadline budget even
        # when the response is an error — the time passed either way.
        delay_header = response.headers.get(SYNTHETIC_DELAY_HEADER)
        if delay_header and meter is not None:
            try:
                seconds = float(delay_header)
            except ValueError:
                seconds = 0.0
            meter.advance_clock_ms(seconds * 1000.0)
            meter.check_deadline()
        if not response.ok:
            reason = "HTTP %d" % response.status
            if classify_status(response.status):
                raise TransientNetworkError(request.url, reason)
            raise NetworkError(request.url, reason)
        return response


class DictWebSource:
    """A trivial WebSource backed by a {url-string: Response} dict.

    Used by tests and examples that need a hand-built two-page web.
    """

    def __init__(self, pages: Optional[Dict[str, Response]] = None) -> None:
        self.pages: Dict[str, Response] = dict(pages or {})

    def add_html(self, url: str, body: str) -> None:
        parsed = Url.parse(url)
        self.pages[str(parsed)] = Response(
            url=parsed, content_type="text/html", body=body
        )

    def add_script(self, url: str, body: str) -> None:
        parsed = Url.parse(url)
        self.pages[str(parsed)] = Response(
            url=parsed, content_type="application/javascript", body=body
        )

    def respond(self, request: Request) -> Optional[Response]:
        return self.pages.get(str(request.url))


class FaultInjectingSource:
    """A web-source wrapper that fails chosen (domain, attempt) pairs.

    Wraps any :class:`WebSource` (including a full synthetic web —
    unknown attributes delegate to the wrapped object, so the survey
    runner can crawl through it unchanged) and injects an outage for
    selected *site-measurement attempts*.

    An attempt is one full pass of ``visits_per_site`` rounds over a
    site; each round issues exactly one first-try document request for
    the site's home page, so attempt boundaries are recovered by
    counting home-page document requests: requests ``(k-1)*R+1 ..
    k*R`` belong to attempt ``k`` (``R`` = ``rounds_per_attempt``).
    Request-level *retries* (``request.attempt > 1``) are replays of a
    counted request and are never counted again, so the boundaries
    stay put whatever the fetcher's retry policy.  Tests use this to
    exercise retry-then-succeed, retry-exhausted and mixed-condition
    behavior deterministically.

    ``scope`` controls the blast radius of a failed attempt:

    * ``"home"`` (default) — only the home-page document fails (the
      classic whole-site outage: nothing loads because the front door
      is down);
    * ``"site"`` — every request to the domain fails during a failed
      attempt (home page included);
    * ``"subresources"`` — the home page loads but every *other*
      request to the domain (deeper documents, scripts, images, XHR)
      fails: the degraded-page case.

    ``transient=True`` raises :class:`TransientNetworkError` (retry
    layers re-attempt); ``transient=False`` answers "host not found"
    (deterministic — not retried).
    """

    SCOPES = ("home", "site", "subresources")

    def __init__(
        self,
        inner: WebSource,
        fail: Mapping[str, Iterable[int]],
        rounds_per_attempt: int,
        reason: str = "injected outage",
        transient: bool = True,
        scope: str = "home",
    ) -> None:
        if rounds_per_attempt < 1:
            raise ValueError("rounds_per_attempt must be >= 1")
        if scope not in self.SCOPES:
            raise ValueError(
                "scope must be one of %s" % (self.SCOPES,)
            )
        self._inner = inner
        self._fail: Dict[str, Set[int]] = {
            domain: set(attempts) for domain, attempts in fail.items()
        }
        self._rounds = rounds_per_attempt
        self.reason = reason
        self.transient = transient
        self.scope = scope
        self._home_requests: Dict[str, int] = {}
        #: every (domain, attempt) this source actually failed
        self.injected: List[Tuple[str, int]] = []

    def __getattr__(self, name: str):
        if name == "_inner":
            # During unpickling __getattr__ runs before __init__ has
            # set _inner; without this guard the lookup recurses.
            raise AttributeError(name)
        return getattr(self._inner, name)

    def _current_attempt(self, domain: str) -> int:
        """The site attempt in progress, from home requests seen."""
        count = self._home_requests.get(domain, 0)
        if count == 0:
            return 1
        return (count - 1) // self._rounds + 1

    def _fail_now(self, url, attempt: int) -> Optional[Response]:
        self.injected.append((url.host, attempt))
        if self.transient:
            raise TransientNetworkError(url, self.reason)
        return None

    def respond(self, request: Request) -> Optional[Response]:
        url = request.url
        domain = url.host
        if domain not in self._fail:
            return self._inner.respond(request)
        is_home = (
            request.kind == ResourceKind.DOCUMENT and url.path == "/"
        )
        if is_home and getattr(request, "attempt", 1) == 1:
            count = self._home_requests.get(domain, 0) + 1
            self._home_requests[domain] = count
        attempt = self._current_attempt(domain)
        if attempt in self._fail[domain]:
            if self.scope == "site":
                return self._fail_now(url, attempt)
            if self.scope == "home" and is_home:
                return self._fail_now(url, attempt)
            if self.scope == "subresources" and not is_home:
                return self._fail_now(url, attempt)
        return self._inner.respond(request)

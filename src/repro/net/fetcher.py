"""Fetching documents and subresources from a web source.

:class:`WebSource` is the interface a "web" must implement to be
crawlable (the synthetic web implements it; a test double can too).
:class:`Fetcher` layers request accounting and failure semantics on
top: unknown hosts raise :class:`NetworkError` the way a dead domain
times out, and unresponsive sites stay unresponsive — the paper could
not measure 267 of the Alexa 10k for exactly these reasons.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Set,
    Tuple,
)

from repro.core.sandbox import heartbeat
from repro.net.resources import Request, ResourceKind, Response
from repro.net.url import Url


class NetworkError(Exception):
    """Host unreachable / connection refused / timeout.

    ``transient`` distinguishes failures worth retrying (an overloaded
    host, a dropped connection) from deterministic ones (NXDOMAIN, a
    page that always serves HTTP 500): the survey's retry policy re-attempts
    only the former by default, since re-running a deterministic
    failure just repeats it.
    """

    def __init__(
        self, url: Url, reason: str, transient: bool = False
    ) -> None:
        super().__init__("%s: %s" % (url, reason))
        self.url = url
        self.reason = reason
        self.transient = transient


class TransientNetworkError(NetworkError):
    """A failure that may succeed on retry (timeout, reset, overload)."""

    def __init__(self, url: Url, reason: str) -> None:
        super().__init__(url, reason, transient=True)


class WebSource(Protocol):
    """Anything that can serve responses for URLs."""

    def respond(self, request: Request) -> Optional[Response]:
        """Return a response, or None when the host does not exist."""


class Fetcher:
    """Issues requests against a web source, with accounting.

    ``request_log`` records every request issued (the crawl statistics
    in Table 1 come from here); ``observers`` get a callback per request
    so blocking extensions can veto loads *before* they happen, which is
    where AdBlock Plus and Ghostery actually intervene.
    """

    def __init__(self, source: WebSource) -> None:
        self._source = source
        self.requests_issued = 0
        self.requests_failed = 0
        self._observers: List[Callable[[Request], bool]] = []
        #: The active visit's budget meter (repro.core.sandbox),
        #: installed by the browser around each page so fetch storms
        #: charge the per-page cap.  None = unmetered.
        self.budget_meter = None

    def add_observer(self, observer: Callable[[Request], bool]) -> None:
        """Register a request gate; returning False blocks the request."""
        self._observers.append(observer)

    def clear_observers(self) -> None:
        self._observers = []

    def fetch(self, request: Request) -> Response:
        """Fetch a resource; raises NetworkError on failure or block.

        A blocked request raises with reason ``"blocked"`` so callers
        can distinguish extension vetoes from dead hosts.
        """
        self.requests_issued += 1
        # Touching the (possibly hostile) web source is the one place a
        # crawl worker can genuinely block, so signal liveness to the
        # watchdog just before — a hung respond() leaves the heartbeat
        # stale and the supervisor kills the worker.
        heartbeat()
        meter = self.budget_meter
        if meter is not None:
            meter.charge_fetch()
        for observer in self._observers:
            if not observer(request):
                self.requests_failed += 1
                raise NetworkError(request.url, "blocked")
        response = self._source.respond(request)
        if response is None:
            self.requests_failed += 1
            raise NetworkError(request.url, "host not found")
        if not response.ok:
            self.requests_failed += 1
            raise NetworkError(
                request.url, "HTTP %d" % response.status
            )
        return response


class DictWebSource:
    """A trivial WebSource backed by a {url-string: Response} dict.

    Used by tests and examples that need a hand-built two-page web.
    """

    def __init__(self, pages: Optional[Dict[str, Response]] = None) -> None:
        self.pages: Dict[str, Response] = dict(pages or {})

    def add_html(self, url: str, body: str) -> None:
        parsed = Url.parse(url)
        self.pages[str(parsed)] = Response(
            url=parsed, content_type="text/html", body=body
        )

    def add_script(self, url: str, body: str) -> None:
        parsed = Url.parse(url)
        self.pages[str(parsed)] = Response(
            url=parsed, content_type="application/javascript", body=body
        )

    def respond(self, request: Request) -> Optional[Response]:
        return self.pages.get(str(request.url))


class FaultInjectingSource:
    """A web-source wrapper that fails chosen (domain, attempt) pairs.

    Wraps any :class:`WebSource` (including a full synthetic web —
    unknown attributes delegate to the wrapped object, so the survey
    runner can crawl through it unchanged) and injects a site-wide
    outage for selected *site-measurement attempts*.

    An attempt is one full pass of ``visits_per_site`` rounds over a
    site; each round issues exactly one document request for the
    site's home page, so attempt boundaries are recovered by counting
    home-page document requests: requests ``(k-1)*R+1 .. k*R`` belong
    to attempt ``k`` (``R`` = ``rounds_per_attempt``).  Tests use this
    to exercise retry-then-succeed, retry-exhausted and mixed-condition
    behavior deterministically.

    ``transient=True`` raises :class:`TransientNetworkError` (the
    retry policy re-attempts); ``transient=False`` answers "host not
    found" (deterministic — not retried).
    """

    def __init__(
        self,
        inner: WebSource,
        fail: Mapping[str, Iterable[int]],
        rounds_per_attempt: int,
        reason: str = "injected outage",
        transient: bool = True,
    ) -> None:
        if rounds_per_attempt < 1:
            raise ValueError("rounds_per_attempt must be >= 1")
        self._inner = inner
        self._fail: Dict[str, Set[int]] = {
            domain: set(attempts) for domain, attempts in fail.items()
        }
        self._rounds = rounds_per_attempt
        self.reason = reason
        self.transient = transient
        self._home_requests: Dict[str, int] = {}
        #: every (domain, attempt) this source actually failed
        self.injected: List[Tuple[str, int]] = []

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def respond(self, request: Request) -> Optional[Response]:
        url = request.url
        if request.kind == ResourceKind.DOCUMENT and url.path == "/":
            domain = url.host
            if domain in self._fail:
                count = self._home_requests.get(domain, 0) + 1
                self._home_requests[domain] = count
                attempt = (count - 1) // self._rounds + 1
                if attempt in self._fail[domain]:
                    self.injected.append((domain, attempt))
                    if self.transient:
                        raise TransientNetworkError(url, self.reason)
                    return None
        return self._inner.respond(request)

"""Requests, responses and resource classification."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.net.url import Url


class ResourceKind:
    """What a request is fetching — the axis blockers filter on."""

    DOCUMENT = "document"
    SCRIPT = "script"
    IMAGE = "image"
    STYLESHEET = "stylesheet"
    XHR = "xhr"
    BEACON = "beacon"
    SUBDOCUMENT = "subdocument"
    OTHER = "other"

    ALL = (DOCUMENT, SCRIPT, IMAGE, STYLESHEET, XHR, BEACON, SUBDOCUMENT,
           OTHER)


@dataclass(frozen=True)
class Request:
    """One outgoing request, with the context blockers need."""

    url: Url
    kind: str = ResourceKind.DOCUMENT
    #: The page (first party) on whose behalf the request happens.
    first_party: Optional[Url] = None
    #: Which wire attempt this is (1 = first try).  The fetcher's retry
    #: loop re-issues the same request with a bumped attempt, which is
    #: what lets chaos sources model "fails the first k attempts" (and
    #: attempt-counting wrappers ignore replays) *statelessly* — no
    #: per-URL counters to diverge between serial, parallel and resumed
    #: executions.
    attempt: int = 1

    @property
    def is_third_party(self) -> bool:
        if self.first_party is None:
            return False
        return not self.url.same_site(self.first_party)


@dataclass
class Response:
    """One response from the simulated network."""

    url: Url
    status: int = 200
    content_type: str = "text/html"
    body: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_html(self) -> bool:
        return self.content_type.startswith("text/html")

    @property
    def is_script(self) -> bool:
        return self.content_type in (
            "application/javascript", "text/javascript"
        )

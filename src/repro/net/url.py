"""URL parsing, joining and domain classification.

Blocking extensions and the crawler both reason about URLs constantly:
AdBlock Plus filters match on URL substrings and registrable domains,
Ghostery matches tracker host suffixes, and the crawler's breadth-first
walk needs path segments ("prefer URLs whose directory structure has
not been seen") and same-site checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


class UrlError(ValueError):
    """Unparseable URL."""


#: Multi-label public suffixes the synthetic web uses (a tiny PSL).
_TWO_LABEL_SUFFIXES = frozenset(
    ["co.uk", "com.br", "co.jp", "com.cn", "org.uk", "com.au", "co.in"]
)


@dataclass(frozen=True)
class Url:
    """An absolute http(s) URL, normalized."""

    scheme: str
    host: str
    port: Optional[int]
    path: str
    query: str

    @classmethod
    def parse(cls, text: str) -> "Url":
        raw = text.strip()
        if "://" not in raw:
            raise UrlError("not an absolute URL: %r" % text)
        scheme, rest = raw.split("://", 1)
        scheme = scheme.lower()
        if scheme not in ("http", "https", "ws", "wss"):
            raise UrlError("unsupported scheme %r" % scheme)
        rest = rest.split("#", 1)[0]
        # The authority ends at the first "/" OR "?": a URL can carry a
        # query with no path ("https://example.com?x=1"), and splitting
        # on "/" first would fold "?x=1" into the host — corrupting
        # every same-site and blocking decision made about the URL
        # (tracker pixels are exactly this shape).
        authority_end = len(rest)
        for separator in ("/", "?"):
            index = rest.find(separator)
            if index != -1:
                authority_end = min(authority_end, index)
        authority = rest[:authority_end]
        path_query = rest[authority_end:]
        if not path_query.startswith("/"):
            path_query = "/" + path_query
        if "?" in path_query:
            path, query = path_query.split("?", 1)
        else:
            path, query = path_query, ""
        authority = authority.lower()
        port: Optional[int] = None
        if ":" in authority:
            host, port_text = authority.rsplit(":", 1)
            # isdigit() rejects signs and whitespace, so "-80" and
            # "+80" fail here rather than round-tripping through int().
            if not port_text.isdigit():
                raise UrlError("bad port in %r" % text)
            port = int(port_text)
            if port > 65535:
                raise UrlError("port out of range in %r" % text)
        else:
            host = authority
        if not host:
            raise UrlError("empty host in %r" % text)
        return cls(scheme=scheme, host=host, port=port,
                   path=_normalize_path(path), query=query)

    def join(self, reference: str) -> "Url":
        """Resolve a (possibly relative) reference against this URL."""
        reference = reference.strip()
        if "://" in reference:
            return Url.parse(reference)
        if reference.startswith("//"):
            return Url.parse(self.scheme + ":" + reference)
        if reference.startswith("/"):
            return Url(self.scheme, self.host, self.port,
                       *_split_path_query(reference))
        if reference.startswith("?"):
            return Url(self.scheme, self.host, self.port, self.path,
                       reference[1:])
        if not reference:
            return self
        base_dir = self.path.rsplit("/", 1)[0]
        combined = base_dir + "/" + reference
        return Url(self.scheme, self.host, self.port,
                   *_split_path_query(combined))

    # -- domain reasoning --------------------------------------------------

    @property
    def registrable_domain(self) -> str:
        """eTLD+1 under the miniature public-suffix list."""
        labels = self.host.split(".")
        if len(labels) <= 2:
            return self.host
        two_label_suffix = ".".join(labels[-2:])
        if two_label_suffix in _TWO_LABEL_SUFFIXES:
            return ".".join(labels[-3:])
        return two_label_suffix

    def same_site(self, other: "Url") -> bool:
        return self.registrable_domain == other.registrable_domain

    @property
    def path_segments(self) -> Tuple[str, ...]:
        return tuple(s for s in self.path.split("/") if s)

    @property
    def directory_signature(self) -> Tuple[str, ...]:
        """The path minus its last segment: the crawl's novelty key."""
        segments = self.path_segments
        return segments[:-1] if segments else ()

    def __str__(self) -> str:
        port = "" if self.port is None else ":%d" % self.port
        query = "?" + self.query if self.query else ""
        return "%s://%s%s%s%s" % (self.scheme, self.host, port, self.path,
                                  query)


def _normalize_path(path: str) -> str:
    if not path.startswith("/"):
        path = "/" + path
    segments: List[str] = []
    for segment in path.split("/"):
        if segment == "..":
            if segments:
                segments.pop()
        elif segment not in ("", "."):
            segments.append(segment)
    normalized = "/" + "/".join(segments)
    if path.endswith("/") and normalized != "/":
        normalized += "/"
    return normalized


def _split_path_query(path_query: str) -> Tuple[str, str]:
    if "?" in path_query:
        path, query = path_query.split("?", 1)
    else:
        path, query = path_query, ""
    return _normalize_path(path), query

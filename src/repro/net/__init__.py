"""The simulated network: URLs, resources, fetching, the injecting proxy.

The crawl never leaves the process: :class:`repro.net.fetcher.Fetcher`
serves the synthetic web's documents and scripts, and
:class:`repro.net.proxy.InjectingProxy` rewrites HTML responses to place
the measuring extension's instrumentation at the very beginning of
``<head>`` — before any page content loads, exactly the injection point
the paper describes (section 4.2, Figure 2).
"""

from repro.net.url import Url, UrlError
from repro.net.resources import Request, Response, ResourceKind
from repro.net.fetcher import (
    Fetcher,
    NetworkError,
    TransientNetworkError,
    WebSource,
)
from repro.net.proxy import InjectingProxy
from repro.net.resilience import (
    CircuitBreaker,
    DegradedResource,
    ResilienceConfig,
)

__all__ = [
    "Url",
    "UrlError",
    "Request",
    "Response",
    "ResourceKind",
    "Fetcher",
    "NetworkError",
    "TransientNetworkError",
    "WebSource",
    "InjectingProxy",
    "CircuitBreaker",
    "DegradedResource",
    "ResilienceConfig",
]

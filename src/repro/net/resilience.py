"""Network resilience: per-request retries and per-origin circuit breakers.

The paper could not measure 267 of the Alexa 10k because the real web
is flaky — hosts time out, subresources 500, markup truncates mid-byte.
Real Firefox 46 absorbs most of that below the page layer: it retries
individual requests, stops hammering an origin that keeps refusing, and
renders whatever it got.  This module is that layer for our crawl:

* :class:`ResilienceConfig` — immutable per-request retry + breaker
  policy.  Backoff delays carry *deterministic seeded jitter* (derived
  through :func:`repro.seeding.derive_seed`, never ``random``), and on
  the crawl path they only ever advance the sandbox
  :class:`~repro.core.sandbox.VirtualClock` via the active
  :class:`~repro.core.sandbox.BudgetMeter` — there is no wall-clock
  ``time.sleep`` anywhere in-crawl, so budget-limited runs stay
  bit-identical across serial/fork/spawn/resume executions.
* :class:`CircuitBreaker` — the classic closed → open → half-open
  state machine, one per origin, counted in *requests* rather than
  seconds so its behavior is schedule-independent.  A dead CDN origin
  stops burning retries for every page that references it.
* :class:`ResilienceState` — the mutable per-fetcher runtime (the
  breaker table).  Breaker state is **per visit round**: the crawler
  resets it at the top of every round, so a resumed or parallel run
  sees exactly the breaker history a serial run would.
* :class:`DegradedResource` — the structured record a lost subresource
  leaves on the page visit instead of failing it: a cause ``slug``,
  the URL, and how many attempts the retry policy spent.  Degraded
  pages are *measured* pages; analysis counts them separately from
  failed ones.

The actual retry loop lives in :class:`repro.net.fetcher.Fetcher`
(which owns the budget meter and the wire); this module deliberately
imports nothing from it, so both :mod:`repro.net.fetcher` and
:mod:`repro.browser.session` can depend on these types without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.seeding import derive_seed

#: Matches any host when present in a chaos/resilience domain set.
ALL_HOSTS = "*"

#: Response header carrying synthetic origin latency in seconds.  The
#: fetcher credits it to the active meter's virtual clock, so a "slow"
#: origin burns deadline budget without any process actually sleeping.
SYNTHETIC_DELAY_HEADER = "x-synthetic-delay"

#: Distinct degraded records kept per page visit / site measurement
#: (occurrence *counts* are unbounded; the detail list is capped so a
#: fetch storm of dead subresources cannot bloat checkpoint shards).
DEGRADED_DETAIL_CAP = 32


@dataclass(frozen=True)
class DegradedResource:
    """One resource the page lost without the visit failing.

    ``slug`` is the structured cause ("subresource:script",
    "subresource:image", "recovered-html:unterminated-script",
    "circuit-open", ...), ``url`` the resource, ``attempts`` how many
    wire attempts the retry policy spent before giving up.
    """

    slug: str
    url: str
    attempts: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {"slug": self.slug, "url": self.url,
                "attempts": self.attempts}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "DegradedResource":
        return cls(slug=str(raw["slug"]), url=str(raw["url"]),
                   attempts=int(raw.get("attempts", 1)))


def merge_degraded(
    into: List[DegradedResource],
    new: Iterable[DegradedResource],
    cap: int = DEGRADED_DETAIL_CAP,
) -> int:
    """Fold new degraded records into a capped, deduplicated list.

    Duplicates — the same (slug, url) lost again on a later page or
    round — are counted but not re-listed.  Returns the number of
    records folded (occurrences, not distinct entries), so callers can
    keep an exact total besides the capped detail.
    """
    seen = {(entry.slug, entry.url) for entry in into}
    folded = 0
    for entry in new:
        folded += 1
        key = (entry.slug, entry.url)
        if key in seen or len(into) >= cap:
            continue
        seen.add(key)
        into.append(entry)
    return folded


@dataclass(frozen=True)
class ResilienceConfig:
    """Per-request retry and circuit-breaker policy (immutable).

    The default instance is inert (one attempt, no breaker), so a bare
    :class:`~repro.net.fetcher.Fetcher` behaves exactly as before this
    layer existed; crawls opt in via ``SurveyConfig.resilience`` or the
    ``--request-retries`` / ``--breaker-threshold`` CLI flags.
    """

    #: total wire attempts per request, including the first (1 = off)
    request_attempts: int = 1
    #: virtual seconds before the first retry
    backoff_base: float = 0.25
    #: exponential growth factor between retries
    backoff_factor: float = 2.0
    #: ceiling on any single backoff delay
    backoff_max: float = 8.0
    #: jitter fraction: each delay is scaled by ``1 + jitter * u`` with
    #: ``u`` deterministically derived from (seed, url, attempt) in
    #: [-1, 1) — seeded, so every execution mode computes the same
    #: delays and budget-limited runs stay bit-identical
    jitter: float = 0.5
    #: jitter seed; ``None`` derives one from the survey seed
    seed: Optional[int] = None
    #: consecutive transient failures before an origin's breaker opens
    #: (``None`` disables circuit breaking)
    breaker_threshold: Optional[int] = None
    #: fast-failed requests an open breaker absorbs before letting one
    #: half-open probe through
    breaker_cooldown: int = 8

    @property
    def active(self) -> bool:
        """Does this policy change anything over the bare fetcher?"""
        return self.request_attempts > 1 or self.breaker_threshold is not None

    def seeded(self, survey_seed: int) -> "ResilienceConfig":
        """This config with a concrete jitter seed derived for a run."""
        if self.seed is not None:
            return self
        return replace(
            self, seed=derive_seed(survey_seed, "net-jitter")
        )

    def delay(self, url: str, failures: int) -> float:
        """Backoff (virtual seconds) before the retry after N failures.

        A pure function of (seed, url, failures): the same request
        retried in a forked worker, a spawned worker or a resumed run
        backs off by the exact same amount.
        """
        if failures < 1:
            return 0.0
        base = self.backoff_base * (
            self.backoff_factor ** (failures - 1)
        )
        base = min(base, self.backoff_max)
        if self.jitter <= 0.0 or base <= 0.0:
            return base
        unit = (derive_seed(self.seed or 0, url, failures)
                % 1_000_000) / 1_000_000.0  # [0, 1)
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def fingerprint(self) -> Dict[str, Any]:
        """JSON-ready identity for checkpoint manifests.

        Everything that shapes *what a measurement contains* is
        included; resuming a run under a different retry policy would
        mix incomparable records.
        """
        return {
            "request_attempts": self.request_attempts,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_max": self.backoff_max,
            "jitter": self.jitter,
            "seed": self.seed,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown": self.breaker_cooldown,
        }


class CircuitBreaker:
    """Closed → open → half-open, counted in requests, per origin.

    Single-threaded by design (each crawl worker owns its fetcher):
    ``allow()`` answers whether the next request may touch the wire,
    and the caller reports the outcome through ``record_success`` /
    ``record_failure``.  While open, the breaker fast-fails
    ``cooldown`` requests, then admits exactly one half-open probe;
    the probe's outcome closes or re-opens it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, threshold: int, cooldown: int) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = max(1, cooldown)
        self.state = self.CLOSED
        #: consecutive transient failures while closed/half-open
        self.failures = 0
        #: requests fast-failed since the breaker (re-)opened
        self.shorted = 0
        #: times this breaker transitioned to open (telemetry)
        self.opens = 0

    def allow(self) -> bool:
        """May the next request touch the origin?

        Transitions open → half-open when the cooldown has been
        served; the admitted request is the probe.
        """
        if self.state != self.OPEN:
            return True
        if self.shorted >= self.cooldown:
            self.state = self.HALF_OPEN
            return True
        self.shorted += 1
        return False

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.failures = 0
        self.shorted = 0

    def record_failure(self) -> bool:
        """Count one transient failure; True when the breaker opens."""
        if self.state == self.HALF_OPEN:
            # The probe failed: straight back to open, fresh cooldown.
            self.state = self.OPEN
            self.shorted = 0
            self.opens += 1
            return True
        self.failures += 1
        if self.state == self.CLOSED and self.failures >= self.threshold:
            self.state = self.OPEN
            self.shorted = 0
            self.opens += 1
            return True
        return False


class ResilienceState:
    """Per-fetcher mutable runtime for one resilience policy."""

    def __init__(self, config: ResilienceConfig) -> None:
        self.config = config
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker_for(self, origin: str) -> Optional[CircuitBreaker]:
        if self.config.breaker_threshold is None:
            return None
        breaker = self._breakers.get(origin)
        if breaker is None:
            breaker = CircuitBreaker(
                self.config.breaker_threshold,
                self.config.breaker_cooldown,
            )
            self._breakers[origin] = breaker
        return breaker

    def reset_round(self) -> None:
        """Forget all breaker state (called at each visit-round start).

        Per-round state is what keeps breaker behavior deterministic:
        a resumed run's first round sees exactly the (empty) history a
        serial run's would.
        """
        self._breakers.clear()

    def breaker_states(self) -> Dict[str, Tuple[str, int]]:
        """origin -> (state, opens) snapshot, for telemetry."""
        return {
            origin: (breaker.state, breaker.opens)
            for origin, breaker in sorted(self._breakers.items())
        }
